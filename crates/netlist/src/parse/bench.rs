//! ISCAS-85/89 `.bench` reader and writer.
//!
//! The `.bench` grammar is line-oriented:
//!
//! ```text
//! # c17
//! INPUT(G1)
//! OUTPUT(G22)
//! G10 = NAND(G1, G3)
//! G5  = DFF(G10)
//! ```
//!
//! Signals are pure names; forward references are legal (a signal may
//! be read, or listed as an `OUTPUT`, before the line defining its
//! driver). Gate keywords are case-insensitive: the classic set
//! (`AND`, `NAND`, `OR`, `NOR`, `XOR`, `XNOR`, `NOT`, `BUF`/`BUFF`,
//! `DFF`) plus the toolkit extensions `MUX(sel, a, b)`, `CONST0()`,
//! and `CONST1()`.
//!
//! Two comment conventions carry toolkit metadata losslessly through a
//! write→parse roundtrip:
//!
//! - `# design: <name>` sets the design name;
//! - a trailing `# tags: key,monitor,...` on a gate line restores the
//!   gate's [`GateTags`].
//!
//! The parser is a single iterative pass: names intern into the
//! netlist's symbol table on first sight, so parsing is O(total input
//! length) and never recurses.

use crate::cell::{CellKind, GateTags};
use crate::error::NetlistError;
use crate::id::NetId;
use crate::netlist::Netlist;
use crate::symbol::Symbol;
use std::collections::HashSet;
use std::fmt::Write as _;

/// Name given to parsed designs that carry no `# design:` header.
pub(crate) const DEFAULT_DESIGN_NAME: &str = "bench";

fn parse_err(line: usize, message: impl Into<String>) -> NetlistError {
    NetlistError::Parse {
        line,
        message: message.into(),
    }
}

/// Maps a `.bench` gate keyword (case-insensitive) to a cell kind.
fn kind_from_keyword(kw: &str) -> Option<CellKind> {
    // keywords are short: an ASCII-uppercase copy avoids allocating for
    // the common already-uppercase case only at the cost of 8 bytes
    let mut buf = [0u8; 8];
    if kw.len() > buf.len() {
        return None;
    }
    buf[..kw.len()].copy_from_slice(kw.as_bytes());
    buf[..kw.len()].make_ascii_uppercase();
    Some(match &buf[..kw.len()] {
        b"AND" => CellKind::And,
        b"NAND" => CellKind::Nand,
        b"OR" => CellKind::Or,
        b"NOR" => CellKind::Nor,
        b"XOR" => CellKind::Xor,
        b"XNOR" => CellKind::Xnor,
        b"NOT" => CellKind::Not,
        b"BUF" | b"BUFF" => CellKind::Buf,
        b"DFF" => CellKind::Dff,
        b"MUX" => CellKind::Mux,
        b"CONST0" => CellKind::Const0,
        b"CONST1" => CellKind::Const1,
        _ => return None,
    })
}

fn keyword_for_kind(kind: CellKind) -> &'static str {
    match kind {
        CellKind::And => "AND",
        CellKind::Nand => "NAND",
        CellKind::Or => "OR",
        CellKind::Nor => "NOR",
        CellKind::Xor => "XOR",
        CellKind::Xnor => "XNOR",
        CellKind::Not => "NOT",
        CellKind::Buf => "BUFF",
        CellKind::Dff => "DFF",
        CellKind::Mux => "MUX",
        CellKind::Const0 => "CONST0",
        CellKind::Const1 => "CONST1",
    }
}

fn parse_tags(comment: &str) -> GateTags {
    let mut tags = GateTags::default();
    if let Some(list) = comment.trim().strip_prefix("tags:") {
        for tag in list.split(',') {
            match tag.trim() {
                "barrier" => tags.no_reassoc = true,
                "key" => tags.key_gate = true,
                "monitor" => tags.monitor = true,
                "tainted" => tags.tainted = true,
                "redundancy" => tags.redundancy = true,
                _ => {}
            }
        }
    }
    tags
}

fn format_tags(tags: &GateTags) -> String {
    let mut names: Vec<&str> = Vec::new();
    if tags.no_reassoc {
        names.push("barrier");
    }
    if tags.key_gate {
        names.push("key");
    }
    if tags.monitor {
        names.push("monitor");
    }
    if tags.tainted {
        names.push("tainted");
    }
    if tags.redundancy {
        names.push("redundancy");
    }
    if names.is_empty() {
        String::new()
    } else {
        format!(" # tags: {}", names.join(","))
    }
}

/// Signal-name bookkeeping shared by the frontends: a symbol-indexed
/// map from interned names to nets, creating nets on first reference.
pub(crate) struct SignalMap {
    net_of: Vec<Option<NetId>>,
}

impl SignalMap {
    pub(crate) fn new() -> Self {
        SignalMap { net_of: Vec::new() }
    }

    /// The net carrying `name`, created (named, undriven) on first
    /// sight.
    pub(crate) fn net(&mut self, nl: &mut Netlist, name: &str) -> NetId {
        let sym = nl.intern(name);
        if self.net_of.len() <= sym.index() {
            self.net_of.resize(sym.index() + 1, None);
        }
        *self.net_of[sym.index()].get_or_insert_with(|| nl.add_named_net(name))
    }

    /// The net for `sym` if that name was seen already.
    pub(crate) fn lookup(&self, sym: Symbol) -> Option<NetId> {
        self.net_of.get(sym.index()).copied().flatten()
    }
}

fn valid_signal_name(name: &str) -> bool {
    !name.is_empty()
        && !name
            .chars()
            .any(|c| c.is_whitespace() || matches!(c, '(' | ')' | ',' | '=' | '#'))
}

/// Parses ISCAS `.bench` text into a [`Netlist`].
///
/// # Errors
///
/// Never panics; malformed input yields typed errors:
/// [`NetlistError::Parse`] (with the 1-based line) for syntax problems,
/// [`NetlistError::BadArity`] for wrong gate input counts,
/// [`NetlistError::MultipleDrivers`] for a signal defined twice (or an
/// `INPUT` that is also driven), [`NetlistError::UnknownNet`] for
/// signals referenced but never defined, and
/// [`NetlistError::CombinationalCycle`] for cyclic logic.
pub fn parse_bench(text: &str) -> Result<Netlist, NetlistError> {
    let mut sp = seceda_trace::span("parse.bench");
    // guess capacity: most lines are gates
    let approx_lines = text.len() / 16;
    let mut nl = Netlist::with_capacity(DEFAULT_DESIGN_NAME, approx_lines, approx_lines);
    let mut signals = SignalMap::new();
    // (net, port override) of every pending OUTPUT, marked at the end
    // so forward references work; order preserved
    let mut outputs: Vec<(NetId, Option<String>)> = Vec::new();
    let mut input_syms: HashSet<Symbol> = HashSet::new();
    let mut arg_buf: Vec<NetId> = Vec::new();

    for (lineno, raw) in text.lines().enumerate() {
        let line = lineno + 1;
        // heartbeat for the stall watchdog on 10^6-line designs
        if line & 0xFFF == 0 {
            seceda_trace::progress("parse.lines_seen", line as u64);
        }
        // split off the comment; a `tags:` comment on a gate line is
        // metadata, `design:` sets the design name
        let (body, comment) = match raw.split_once('#') {
            Some((b, c)) => (b, Some(c)),
            None => (raw, None),
        };
        if let Some(c) = comment {
            if let Some(name) = c.trim().strip_prefix("design:") {
                let name = name.trim();
                if !name.is_empty() {
                    nl.set_name(name);
                }
            }
        }
        let body = body.trim();
        if body.is_empty() {
            continue;
        }

        if let Some((dest, rhs)) = body.split_once('=') {
            // gate line: dest = KIND(arg, arg, ...)
            let dest = dest.trim();
            if !valid_signal_name(dest) {
                return Err(parse_err(line, format!("bad signal name `{dest}`")));
            }
            let rhs = rhs.trim();
            let (kw, rest) = rhs
                .split_once('(')
                .ok_or_else(|| parse_err(line, "expected `KIND(...)` after `=`"))?;
            let kw = kw.trim();
            let kind = kind_from_keyword(kw)
                .ok_or_else(|| parse_err(line, format!("unknown gate type `{kw}`")))?;
            let args = rest
                .strip_suffix(')')
                .map(str::trim_end)
                .or_else(|| rest.trim_end().strip_suffix(')'))
                .ok_or_else(|| parse_err(line, "missing `)` (truncated gate line?)"))?;
            arg_buf.clear();
            for arg in args.split(',') {
                let arg = arg.trim();
                if arg.is_empty() {
                    if args.trim().is_empty() && arg_buf.is_empty() {
                        break; // zero-input gate: KIND()
                    }
                    return Err(parse_err(line, "empty gate argument"));
                }
                if !valid_signal_name(arg) {
                    return Err(parse_err(line, format!("bad signal name `{arg}`")));
                }
                arg_buf.push(signals.net(&mut nl, arg));
            }
            let tags = comment.map(parse_tags).unwrap_or_default();
            let out = signals.net(&mut nl, dest);
            let inputs = std::mem::take(&mut arg_buf);
            nl.try_add_gate_driving(kind, &inputs, out, tags)?;
            arg_buf = inputs;
        } else if let Some(rest) = strip_keyword(body, "INPUT") {
            let name = paren_arg(rest, line)?;
            let net = signals.net(&mut nl, name);
            let sym = nl.intern(name);
            if !input_syms.insert(sym) {
                return Err(NetlistError::MultipleDrivers(name.to_string()));
            }
            nl.promote_input(net)?;
        } else if let Some(rest) = strip_keyword(body, "OUTPUT") {
            let name = paren_arg(rest, line)?;
            // `# port: <name>` keeps a port name that differs from the
            // signal name (several ports on one net, or an input that
            // is also an output)
            let port = comment
                .and_then(|c| c.trim().strip_prefix("port:"))
                .map(|p| p.trim().to_string());
            outputs.push((signals.net(&mut nl, name), port));
        } else {
            return Err(parse_err(
                line,
                format!("expected INPUT(...), OUTPUT(...), or `sig = KIND(...)`, got `{body}`"),
            ));
        }
    }

    // every referenced signal must be an input or have a driver by now
    for net in (0..nl.num_nets()).map(NetId::from_index) {
        if nl.net(net).driver.is_none() && !nl.inputs().contains(&net) {
            return Err(NetlistError::UnknownNet(nl.net_label(net)));
        }
    }
    for (net, port) in outputs {
        let name = port.unwrap_or_else(|| nl.net_label(net));
        nl.mark_output(net, name);
    }
    nl.validate()?;
    sp.attr("gates", nl.num_gates());
    sp.attr("inputs", nl.inputs().len());
    Ok(nl)
}

/// Strips a case-insensitive keyword prefix, returning the remainder.
fn strip_keyword<'a>(body: &'a str, kw: &str) -> Option<&'a str> {
    if body.len() >= kw.len() && body[..kw.len()].eq_ignore_ascii_case(kw) {
        Some(&body[kw.len()..])
    } else {
        None
    }
}

/// Extracts `name` from a `(name)` remainder of an INPUT/OUTPUT line.
fn paren_arg(rest: &str, line: usize) -> Result<&str, NetlistError> {
    let rest = rest.trim();
    let inner = rest
        .strip_prefix('(')
        .and_then(|r| r.strip_suffix(')'))
        .ok_or_else(|| parse_err(line, "expected `(signal)`"))?;
    let name = inner.trim();
    if !valid_signal_name(name) {
        return Err(parse_err(line, format!("bad signal name `{name}`")));
    }
    Ok(name)
}

/// Serializes a netlist to `.bench` text.
///
/// Every net is given a signal name: its interned name when it has
/// one, the (first) output port name for unnamed output nets, and
/// `n<index>` otherwise; collisions are uniquified with a `__<index>`
/// suffix. Gate tags survive as `# tags:` comments. The line order —
/// inputs, then gates in creation order, then outputs — means a design
/// whose nets were created in that same order (all the built-in
/// generators) reparses to a structurally *identical* netlist, net and
/// gate ids included.
///
/// Undriven non-input nets that are read by gates (dangling
/// placeholders) are given an explicit `CONST0()` driver, which
/// preserves simulation semantics (undriven nets read as false) at the
/// cost of one extra gate per dangling net.
pub fn write_bench(nl: &Netlist) -> String {
    let mut names: Vec<Option<String>> = vec![None; nl.num_nets()];
    let mut used: HashSet<String> = HashSet::new();
    let mut assign = |names: &mut Vec<Option<String>>, net: NetId, candidate: String| {
        let name = if used.contains(&candidate) {
            format!("{candidate}__{}", net.index())
        } else {
            candidate
        };
        used.insert(name.clone());
        names[net.index()] = Some(name);
    };
    // first port name per unnamed output net
    let mut port_of: Vec<Option<&str>> = vec![None; nl.num_nets()];
    for (net, port) in nl.outputs() {
        port_of[net.index()].get_or_insert(port.as_str());
    }
    for &pi in nl.inputs() {
        let candidate = nl
            .net_name(pi)
            .map(str::to_string)
            .unwrap_or_else(|| pi.to_string());
        assign(&mut names, pi, candidate);
    }
    for g in nl.gates() {
        let out = g.output;
        let candidate = match nl.net_name(out) {
            Some(n) => n.to_string(),
            None => match port_of[out.index()] {
                Some(p) => p.to_string(),
                None => out.to_string(),
            },
        };
        assign(&mut names, out, candidate);
    }
    // dangling nets read by gates: named now, driven by CONST0 below
    let mut dangling: Vec<NetId> = Vec::new();
    for g in nl.gates() {
        for &inp in &g.inputs {
            if names[inp.index()].is_none() {
                let candidate = nl
                    .net_name(inp)
                    .map(str::to_string)
                    .unwrap_or_else(|| inp.to_string());
                assign(&mut names, inp, candidate);
                dangling.push(inp);
            }
        }
    }

    let name_of = |names: &[Option<String>], net: NetId| -> String {
        names[net.index()].clone().expect("net named")
    };
    let mut out = String::with_capacity(nl.num_gates() * 24 + 64);
    let _ = writeln!(out, "# design: {}", nl.name());
    let _ = writeln!(
        out,
        "# {} gates, {} inputs, {} outputs",
        nl.num_gates(),
        nl.inputs().len(),
        nl.outputs().len()
    );
    for &pi in nl.inputs() {
        let _ = writeln!(out, "INPUT({})", name_of(&names, pi));
    }
    for &net in &dangling {
        let _ = writeln!(
            out,
            "{} = CONST0() # undriven placeholder",
            name_of(&names, net)
        );
    }
    for g in nl.gates() {
        let _ = write!(
            out,
            "{} = {}(",
            name_of(&names, g.output),
            keyword_for_kind(g.kind)
        );
        for (k, &inp) in g.inputs.iter().enumerate() {
            if k > 0 {
                out.push_str(", ");
            }
            out.push_str(&name_of(&names, inp));
        }
        let _ = writeln!(out, "){}", format_tags(&g.tags));
    }
    for (net, port) in nl.outputs() {
        let sig = name_of(&names, *net);
        if port == &sig {
            let _ = writeln!(out, "OUTPUT({sig})");
        } else {
            // port name differs from the signal name (several ports on
            // one net, or an input doubling as an output): keep it in a
            // comment the parser understands
            let _ = writeln!(out, "OUTPUT({sig}) # port: {port}");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench_circuits::c17;

    const C17_BENCH: &str = "\
# design: c17
INPUT(G1)
INPUT(G2)
INPUT(G3)
INPUT(G6)
INPUT(G7)
OUTPUT(G22)
OUTPUT(G23)
G10 = NAND(G1, G3)
G11 = NAND(G3, G6)
G16 = NAND(G2, G11)
G19 = NAND(G11, G7)
G22 = NAND(G10, G16)
G23 = NAND(G16, G19)
";

    #[test]
    fn c17_parses_and_matches_builtin() {
        let parsed = parse_bench(C17_BENCH).expect("parse");
        assert_eq!(parsed.inputs().len(), 5);
        assert_eq!(parsed.outputs().len(), 2);
        assert_eq!(parsed.num_gates(), 6);
        // same function as the in-process builder
        assert_eq!(parsed.truth_table(), c17().truth_table());
    }

    #[test]
    fn forward_references_and_case() {
        let text = "\
output(Y)
Y = nand(A, B)
input(A)
INPUT(B)
";
        let nl = parse_bench(text).expect("parse");
        assert_eq!(nl.inputs().len(), 2);
        assert_eq!(nl.evaluate(&[true, true]), vec![false]);
    }

    #[test]
    fn roundtrip_c17_exact() {
        let nl = c17();
        let text = write_bench(&nl);
        let back = parse_bench(&text).expect("reparse");
        assert_eq!(back, nl);
    }

    #[test]
    fn tags_survive_roundtrip() {
        let mut nl = Netlist::new("tagged");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let y = nl.add_gate_tagged(
            CellKind::Xor,
            &[a, b],
            GateTags {
                key_gate: true,
                monitor: true,
                ..GateTags::default()
            },
        );
        nl.mark_output(y, "y");
        let back = parse_bench(&write_bench(&nl)).expect("reparse");
        assert_eq!(back, nl);
        assert!(back.gates()[0].tags.key_gate);
        assert!(back.gates()[0].tags.monitor);
    }

    #[test]
    fn undefined_net_is_typed() {
        let err = parse_bench("INPUT(a)\nOUTPUT(y)\ny = AND(a, ghost)\n").unwrap_err();
        assert_eq!(err, NetlistError::UnknownNet("ghost".into()));
    }

    #[test]
    fn duplicate_driver_is_typed() {
        let err = parse_bench("INPUT(a)\ny = NOT(a)\ny = BUFF(a)\nOUTPUT(y)\n").unwrap_err();
        assert_eq!(err, NetlistError::MultipleDrivers("y".into()));
        let err = parse_bench("INPUT(a)\na = NOT(a)\n").unwrap_err();
        assert_eq!(err, NetlistError::MultipleDrivers("a".into()));
        let err = parse_bench("INPUT(a)\nINPUT(a)\n").unwrap_err();
        assert_eq!(err, NetlistError::MultipleDrivers("a".into()));
    }

    #[test]
    fn cycle_is_typed() {
        let err = parse_bench("INPUT(a)\nx = AND(a, y)\ny = NOT(x)\nOUTPUT(y)\n").unwrap_err();
        assert_eq!(err, NetlistError::CombinationalCycle);
    }

    #[test]
    fn truncated_and_malformed_lines_are_typed() {
        for bad in [
            "INPUT(a)\ny = NAND(a",         // truncated
            "INPUT(a)\ny = FROB(a, a)\n",   // unknown type
            "INPUT(a\n",                    // bad decl
            "bogus line\n",                 // no directive
            "INPUT(a)\ny = NAND(a, , a)\n", // empty arg
            "INPUT(a)\ny = NAND(a b)\n",    // missing comma
        ] {
            let err = parse_bench(bad).unwrap_err();
            assert!(
                matches!(err, NetlistError::Parse { .. }),
                "`{bad}` gave {err:?}"
            );
        }
        let err = parse_bench("INPUT(a)\ny = NAND(a)\nOUTPUT(y)\n").unwrap_err();
        assert!(matches!(err, NetlistError::BadArity { .. }));
    }

    #[test]
    fn dff_parses_as_state() {
        let text = "\
INPUT(d)
q = DFF(d)
OUTPUT(q)
";
        let nl = parse_bench(text).expect("parse");
        assert_eq!(nl.dffs().len(), 1);
        let (outs, next) = nl.step(&[true], &[false]).expect("step");
        assert_eq!(outs, vec![false]);
        assert_eq!(next, vec![true]);
    }

    #[test]
    fn dangling_nets_export_as_const0() {
        let mut nl = Netlist::new("dangle");
        let a = nl.add_input("a");
        let ghost = nl.add_net();
        let y = nl.add_gate(CellKind::Or, &[a, ghost]);
        nl.mark_output(y, "y");
        let back = parse_bench(&write_bench(&nl)).expect("reparse");
        // one extra CONST0 gate, same function
        assert_eq!(back.num_gates(), nl.num_gates() + 1);
        assert_eq!(back.truth_table(), nl.truth_table());
    }
}
