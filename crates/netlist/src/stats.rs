//! Area / depth / composition statistics — the classical "A" in PPA.

use crate::cell::CellKind;
use crate::netlist::Netlist;
use std::collections::BTreeMap;

/// Aggregate statistics of a netlist.
#[derive(Debug, Clone, PartialEq)]
pub struct NetlistStats {
    /// Gate count per cell kind.
    pub by_kind: BTreeMap<CellKind, usize>,
    /// Total number of gate instances.
    pub num_gates: usize,
    /// Number of primary inputs.
    pub num_inputs: usize,
    /// Number of primary outputs.
    pub num_outputs: usize,
    /// Number of D flip-flops.
    pub num_dffs: usize,
    /// Estimated area in gate equivalents, costing n-ary gates as trees
    /// of 2-input cells.
    pub area_ge: f64,
}

impl NetlistStats {
    /// Computes statistics for `nl`.
    pub fn of(nl: &Netlist) -> Self {
        let mut by_kind = BTreeMap::new();
        let mut area = 0.0;
        for g in nl.gates() {
            *by_kind.entry(g.kind).or_insert(0) += 1;
            // An n-input gate decomposes into (n-1) two-input cells.
            let instances = g.inputs.len().saturating_sub(1).max(1) as f64;
            let unit = g.kind.area_ge();
            area += if g.inputs.len() <= 2 {
                unit
            } else {
                unit * instances
            };
        }
        NetlistStats {
            num_gates: nl.num_gates(),
            num_inputs: nl.inputs().len(),
            num_outputs: nl.outputs().len(),
            num_dffs: nl.dffs().len(),
            by_kind,
            area_ge: area,
        }
    }
}

/// Per-net logic depth report (in units of gate delay).
#[derive(Debug, Clone, PartialEq)]
pub struct DepthReport {
    /// Arrival time (accumulated [`CellKind::delay`]) per net.
    pub arrival: Vec<f64>,
    /// The maximum arrival time over the primary outputs — the critical
    /// path delay of the combinational logic.
    pub critical_path: f64,
    /// Maximum logic depth in gate levels (unit delay per gate).
    pub levels: usize,
}

impl DepthReport {
    /// Computes arrival times over the combinational logic, treating
    /// primary inputs and DFF outputs as time-zero sources.
    ///
    /// # Panics
    ///
    /// Panics if the netlist has a combinational cycle.
    pub fn of(nl: &Netlist) -> Self {
        let order = nl.topo_order().expect("cyclic netlist");
        let mut arrival = vec![0.0f64; nl.num_nets()];
        let mut level = vec![0usize; nl.num_nets()];
        for gid in order {
            let g = nl.gate(gid);
            let worst_in = g
                .inputs
                .iter()
                .map(|&i| arrival[i.index()])
                .fold(0.0, f64::max);
            let worst_lvl = g
                .inputs
                .iter()
                .map(|&i| level[i.index()])
                .max()
                .unwrap_or(0);
            // n-ary gates cost a log-depth tree of 2-input cells
            let fan = g.inputs.len().max(2);
            let tree_levels = (usize::BITS - (fan - 1).leading_zeros()) as f64;
            arrival[g.output.index()] = worst_in + g.kind.delay() * tree_levels.max(1.0);
            level[g.output.index()] = worst_lvl + 1;
        }
        let critical_path = nl
            .outputs()
            .iter()
            .map(|&(n, _)| arrival[n.index()])
            .fold(0.0, f64::max);
        let levels = nl
            .outputs()
            .iter()
            .map(|&(n, _)| level[n.index()])
            .max()
            .unwrap_or(0);
        DepthReport {
            arrival,
            critical_path,
            levels,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::CellKind;
    use crate::netlist::Netlist;

    #[test]
    fn stats_count_kinds_and_area() {
        let mut nl = Netlist::new("s");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let x = nl.add_gate(CellKind::And, &[a, b]);
        let y = nl.add_gate(CellKind::Xor, &[a, x]);
        nl.mark_output(y, "y");
        let st = NetlistStats::of(&nl);
        assert_eq!(st.num_gates, 2);
        assert_eq!(st.num_inputs, 2);
        assert_eq!(st.num_outputs, 1);
        assert_eq!(st.by_kind[&CellKind::And], 1);
        assert_eq!(st.by_kind[&CellKind::Xor], 1);
        assert!((st.area_ge - (1.5 + 2.5)).abs() < 1e-9);
    }

    #[test]
    fn depth_chain() {
        let mut nl = Netlist::new("d");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let mut cur = nl.add_gate(CellKind::Nand, &[a, b]);
        for _ in 0..4 {
            cur = nl.add_gate(CellKind::Nand, &[cur, b]);
        }
        nl.mark_output(cur, "y");
        let d = DepthReport::of(&nl);
        assert_eq!(d.levels, 5);
        assert!((d.critical_path - 5.0).abs() < 1e-9);
    }

    #[test]
    fn wide_gate_costs_tree() {
        let mut nl = Netlist::new("w");
        let ins: Vec<_> = (0..8).map(|i| nl.add_input(format!("i{i}"))).collect();
        let y = nl.add_gate(CellKind::Xor, &ins);
        nl.mark_output(y, "y");
        let st = NetlistStats::of(&nl);
        // 8-input XOR = 7 two-input XORs
        assert!((st.area_ge - 7.0 * 2.5).abs() < 1e-9);
        let d = DepthReport::of(&nl);
        // log2(8) = 3 levels of XOR delay 2.0
        assert!((d.critical_path - 6.0).abs() < 1e-9);
    }
}
