//! Word-level construction helpers.
//!
//! Cipher and datapath generators need to manipulate multi-bit buses; a
//! [`Word`] is an ordered list of nets (LSB first) together with free
//! functions that lower word operations to gates.

use crate::cell::CellKind;
use crate::id::NetId;
use crate::netlist::Netlist;

/// An ordered bundle of nets forming a bus, least-significant bit first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Word(pub Vec<NetId>);

impl Word {
    /// Creates a word from bits (LSB first).
    pub fn new(bits: Vec<NetId>) -> Self {
        Word(bits)
    }

    /// Declares `width` fresh primary inputs named `name[i]`.
    pub fn input(nl: &mut Netlist, name: &str, width: usize) -> Self {
        Word(
            (0..width)
                .map(|i| nl.add_input(format!("{name}[{i}]")))
                .collect(),
        )
    }

    /// Creates a constant word holding `value` (LSB first).
    pub fn constant(nl: &mut Netlist, value: u64, width: usize) -> Self {
        Word(
            (0..width)
                .map(|i| {
                    let kind = if (value >> i) & 1 == 1 {
                        CellKind::Const1
                    } else {
                        CellKind::Const0
                    };
                    nl.add_gate(kind, &[])
                })
                .collect(),
        )
    }

    /// Bus width in bits.
    pub fn width(&self) -> usize {
        self.0.len()
    }

    /// The bits, LSB first.
    pub fn bits(&self) -> &[NetId] {
        &self.0
    }

    /// Marks every bit as a primary output named `name[i]`.
    pub fn mark_output(&self, nl: &mut Netlist, name: &str) {
        for (i, &b) in self.0.iter().enumerate() {
            nl.mark_output(b, format!("{name}[{i}]"));
        }
    }

    /// Bitwise XOR with another word of the same width.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn xor(&self, nl: &mut Netlist, other: &Word) -> Word {
        self.zip_map(nl, other, CellKind::Xor)
    }

    /// Bitwise AND with another word of the same width.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn and(&self, nl: &mut Netlist, other: &Word) -> Word {
        self.zip_map(nl, other, CellKind::And)
    }

    /// Bitwise OR with another word of the same width.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn or(&self, nl: &mut Netlist, other: &Word) -> Word {
        self.zip_map(nl, other, CellKind::Or)
    }

    /// Bitwise NOT.
    pub fn not(&self, nl: &mut Netlist) -> Word {
        Word(
            self.0
                .iter()
                .map(|&b| nl.add_gate(CellKind::Not, &[b]))
                .collect(),
        )
    }

    /// Ripple-carry addition (modulo 2^width). Returns the sum word.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn add(&self, nl: &mut Netlist, other: &Word) -> Word {
        assert_eq!(self.width(), other.width(), "word width mismatch");
        let mut carry: Option<NetId> = None;
        let mut bits = Vec::with_capacity(self.width());
        for (&a, &b) in self.0.iter().zip(&other.0) {
            match carry {
                None => {
                    bits.push(nl.add_gate(CellKind::Xor, &[a, b]));
                    carry = Some(nl.add_gate(CellKind::And, &[a, b]));
                }
                Some(c) => {
                    bits.push(nl.add_gate(CellKind::Xor, &[a, b, c]));
                    let ab = nl.add_gate(CellKind::And, &[a, b]);
                    let ac = nl.add_gate(CellKind::And, &[a, c]);
                    let bc = nl.add_gate(CellKind::And, &[b, c]);
                    carry = Some(nl.add_gate(CellKind::Or, &[ab, ac, bc]));
                }
            }
        }
        Word(bits)
    }

    /// Word-level 2:1 multiplexer: `sel ? other : self`, bitwise.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn mux(&self, nl: &mut Netlist, other: &Word, sel: NetId) -> Word {
        assert_eq!(self.width(), other.width(), "word width mismatch");
        Word(
            self.0
                .iter()
                .zip(&other.0)
                .map(|(&a, &b)| nl.add_gate(CellKind::Mux, &[sel, a, b]))
                .collect(),
        )
    }

    /// Left rotation by `k` bit positions (towards the MSB).
    pub fn rotate_left(&self, k: usize) -> Word {
        let w = self.width();
        if w == 0 {
            return self.clone();
        }
        let k = k % w;
        let mut bits = Vec::with_capacity(w);
        // bit i of result = bit (i - k) mod w of input
        for i in 0..w {
            bits.push(self.0[(i + w - k) % w]);
        }
        Word(bits)
    }

    /// Reduction XOR over all bits (parity).
    ///
    /// # Panics
    ///
    /// Panics if the word is empty.
    pub fn reduce_xor(&self, nl: &mut Netlist) -> NetId {
        assert!(!self.0.is_empty(), "cannot reduce an empty word");
        if self.0.len() == 1 {
            return self.0[0];
        }
        nl.add_gate(CellKind::Xor, &self.0)
    }

    /// Equality comparison against another word; returns a single net that
    /// is 1 iff all bits match.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch or empty words.
    pub fn eq(&self, nl: &mut Netlist, other: &Word) -> NetId {
        let per_bit = self.zip_map(nl, other, CellKind::Xnor);
        if per_bit.0.len() == 1 {
            per_bit.0[0]
        } else {
            nl.add_gate(CellKind::And, &per_bit.0)
        }
    }

    fn zip_map(&self, nl: &mut Netlist, other: &Word, kind: CellKind) -> Word {
        assert_eq!(self.width(), other.width(), "word width mismatch");
        Word(
            self.0
                .iter()
                .zip(&other.0)
                .map(|(&a, &b)| nl.add_gate(kind, &[a, b]))
                .collect(),
        )
    }
}

/// Converts output bits (LSB first) of an evaluation back to an integer.
pub fn bits_to_u64(bits: &[bool]) -> u64 {
    bits.iter()
        .enumerate()
        .fold(0u64, |acc, (i, &b)| acc | ((b as u64) << i))
}

/// Expands an integer into `width` bools, LSB first.
pub fn u64_to_bits(value: u64, width: usize) -> Vec<bool> {
    (0..width).map(|i| (value >> i) & 1 == 1).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::Netlist;

    fn eval_word_circuit(nl: &Netlist, a: u64, b: u64, width: usize) -> u64 {
        let mut inputs = u64_to_bits(a, width);
        inputs.extend(u64_to_bits(b, width));
        bits_to_u64(&nl.evaluate(&inputs))
    }

    #[test]
    fn add_matches_integer_addition() {
        let mut nl = Netlist::new("adder");
        let a = Word::input(&mut nl, "a", 8);
        let b = Word::input(&mut nl, "b", 8);
        let s = a.add(&mut nl, &b);
        s.mark_output(&mut nl, "s");
        for (x, y) in [(0u64, 0u64), (1, 1), (200, 100), (255, 255), (17, 240)] {
            assert_eq!(eval_word_circuit(&nl, x, y, 8), (x + y) & 0xff);
        }
    }

    #[test]
    fn xor_and_or_not() {
        let mut nl = Netlist::new("bitwise");
        let a = Word::input(&mut nl, "a", 4);
        let b = Word::input(&mut nl, "b", 4);
        let x = a.xor(&mut nl, &b);
        let n = a.not(&mut nl);
        let o = a.or(&mut nl, &b);
        let m = a.and(&mut nl, &b);
        x.mark_output(&mut nl, "x");
        n.mark_output(&mut nl, "n");
        o.mark_output(&mut nl, "o");
        m.mark_output(&mut nl, "m");
        let mut inputs = u64_to_bits(0b1100, 4);
        inputs.extend(u64_to_bits(0b1010, 4));
        let out = nl.evaluate(&inputs);
        assert_eq!(bits_to_u64(&out[0..4]), 0b0110);
        assert_eq!(bits_to_u64(&out[4..8]), 0b0011);
        assert_eq!(bits_to_u64(&out[8..12]), 0b1110);
        assert_eq!(bits_to_u64(&out[12..16]), 0b1000);
    }

    #[test]
    fn rotate_left_is_pure_wiring() {
        let mut nl = Netlist::new("rot");
        let a = Word::input(&mut nl, "a", 8);
        let r = a.rotate_left(3);
        r.mark_output(&mut nl, "r");
        let inputs = u64_to_bits(0b0000_0001, 8);
        assert_eq!(bits_to_u64(&nl.evaluate(&inputs)), 0b0000_1000);
        let inputs = u64_to_bits(0b1000_0000, 8);
        assert_eq!(bits_to_u64(&nl.evaluate(&inputs)), 0b0000_0100);
    }

    #[test]
    fn eq_and_mux() {
        let mut nl = Netlist::new("eqmux");
        let a = Word::input(&mut nl, "a", 4);
        let b = Word::input(&mut nl, "b", 4);
        let sel = nl.add_input("sel");
        let e = a.eq(&mut nl, &b);
        let m = a.mux(&mut nl, &b, sel);
        nl.mark_output(e, "e");
        m.mark_output(&mut nl, "m");
        let mut inputs = u64_to_bits(5, 4);
        inputs.extend(u64_to_bits(5, 4));
        inputs.push(false);
        let out = nl.evaluate(&inputs);
        assert!(out[0]);
        assert_eq!(bits_to_u64(&out[1..5]), 5);
        let mut inputs = u64_to_bits(5, 4);
        inputs.extend(u64_to_bits(9, 4));
        inputs.push(true);
        let out = nl.evaluate(&inputs);
        assert!(!out[0]);
        assert_eq!(bits_to_u64(&out[1..5]), 9);
    }

    #[test]
    fn constant_word() {
        let mut nl = Netlist::new("const");
        let c = Word::constant(&mut nl, 0xA5, 8);
        c.mark_output(&mut nl, "c");
        assert_eq!(bits_to_u64(&nl.evaluate(&[])), 0xA5);
    }

    #[test]
    fn reduce_xor_parity() {
        let mut nl = Netlist::new("par");
        let a = Word::input(&mut nl, "a", 5);
        let p = a.reduce_xor(&mut nl);
        nl.mark_output(p, "p");
        assert!(nl.evaluate(&u64_to_bits(0b10110, 5))[0]);
        assert!(!nl.evaluate(&u64_to_bits(0b10010, 5))[0]);
    }

    #[test]
    fn bits_helpers_roundtrip() {
        for v in [0u64, 1, 0xdead, u32::MAX as u64] {
            assert_eq!(bits_to_u64(&u64_to_bits(v, 32)), v & 0xffff_ffff);
        }
    }
}
