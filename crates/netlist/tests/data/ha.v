// Half adder with an assign alias and constant ties — exercises the
// structural-Verilog subset beyond plain primitives.
module ha (a, b, sum, carry, tie0);
  input a, b;
  output sum, carry, tie0;
  wire s0;

  xor u0 (s0, a, b);
  assign sum = s0; /* alias becomes a BUF */
  and u1 (carry, a, b);
  assign tie0 = 1'b0;
endmodule
