// ISCAS-85 c17, gate-level structural Verilog.
// Declaration order (inputs, wires, outputs) mirrors the net-creation
// order of the in-process c17() builder so the parsed netlist is
// id-for-id identical to it.
module c17 (G1, G2, G3, G6, G7, G22, G23);
  input G1, G2, G3, G6, G7;
  wire G10, G11, G16, G19;
  output G22, G23;

  nand g0 (G10, G1, G3);
  nand g1 (G11, G3, G6);
  nand g2 (G16, G2, G11);
  nand g3 (G19, G11, G7);
  nand g4 (G22, G10, G16);
  nand g5 (G23, G16, G19);
endmodule
