//! Golden-file tests for the real-design frontend: checked-in ISCAS
//! circuits and hand-written fixtures under `tests/data/`, with gate /
//! port counts, connectivity, and stats pinned against known values.

use seceda_netlist::{
    c17, parse_design_path, random_circuit, write_bench, CellKind, NetlistStats,
    RandomCircuitConfig,
};
use std::path::PathBuf;

fn data(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/data")
        .join(name)
}

/// The config behind the checked-in `rand300.bench` fixture (see
/// `regenerate_rand300` below).
fn rand300_config() -> RandomCircuitConfig {
    RandomCircuitConfig {
        num_inputs: 16,
        num_gates: 300,
        num_outputs: 8,
        with_xor: true,
        seed: 7,
    }
}

#[test]
fn c17_bench_matches_builtin() {
    let nl = parse_design_path(data("c17.bench")).expect("parse c17.bench");
    assert_eq!(nl.name(), "c17");
    assert_eq!(nl.inputs().len(), 5);
    assert_eq!(nl.outputs().len(), 2);
    assert_eq!(nl.num_gates(), 6);
    assert!(nl.gates().iter().all(|g| g.kind == CellKind::Nand));
    // pinned port names
    let input_names: Vec<_> = nl
        .inputs()
        .iter()
        .map(|&pi| nl.net_name(pi).unwrap().to_string())
        .collect();
    assert_eq!(input_names, ["G1", "G2", "G3", "G6", "G7"]);
    let output_names: Vec<_> = nl.outputs().iter().map(|(_, n)| n.as_str()).collect();
    assert_eq!(output_names, ["G22", "G23"]);
    // pinned connectivity: G22 = NAND(G10, G16) where G10 = NAND(G1, G3)
    let g22 = nl.outputs()[0].0;
    let drv = nl.net(g22).driver.expect("driven");
    let g10 = nl.gate(drv).inputs[0];
    let g10_drv = nl.net(g10).driver.expect("driven");
    assert_eq!(
        nl.gate(g10_drv)
            .inputs
            .iter()
            .map(|&i| nl.net_name(i).unwrap())
            .collect::<Vec<_>>(),
        ["G1", "G3"]
    );
    // same function as the in-process builder
    assert_eq!(nl.truth_table(), c17().truth_table());
    // pinned stats
    let stats = NetlistStats::of(&nl);
    assert_eq!(stats.num_dffs, 0);
    assert_eq!(stats.by_kind[&CellKind::Nand], 6);
    assert!((stats.area_ge - 6.0).abs() < 1e-9);
}

#[test]
fn c17_verilog_is_id_identical_to_builtin() {
    // the fixture's declaration order mirrors c17()'s net-creation
    // order, so the parse result is structurally *identical*
    let nl = parse_design_path(data("c17.v")).expect("parse c17.v");
    assert_eq!(nl, c17());
}

#[test]
fn s27_bench_pinned_counts() {
    let nl = parse_design_path(data("s27.bench")).expect("parse s27.bench");
    assert_eq!(nl.name(), "s27");
    assert_eq!(nl.inputs().len(), 4);
    assert_eq!(nl.outputs().len(), 1);
    assert_eq!(nl.num_gates(), 13);
    assert_eq!(nl.dffs().len(), 3);
    let stats = NetlistStats::of(&nl);
    assert_eq!(stats.by_kind[&CellKind::Dff], 3);
    assert_eq!(stats.by_kind[&CellKind::Not], 2);
    assert_eq!(stats.by_kind[&CellKind::And], 1);
    assert_eq!(stats.by_kind[&CellKind::Or], 2);
    assert_eq!(stats.by_kind[&CellKind::Nand], 1);
    assert_eq!(stats.by_kind[&CellKind::Nor], 4);
    // sequential behaviour is exercisable: run a few cycles
    let mut state = vec![false; 3];
    for step in 0..4 {
        let (outs, next) = nl.step(&[true, false, true, false], &state).expect("step");
        assert_eq!(outs.len(), 1, "step {step}");
        state = next;
    }
}

#[test]
fn ha_bench_extensions_pinned() {
    let nl = parse_design_path(data("ha.bench")).expect("parse ha.bench");
    assert_eq!(nl.name(), "ha_ext");
    assert_eq!(nl.inputs().len(), 3);
    assert_eq!(nl.outputs().len(), 2);
    assert_eq!(nl.num_gates(), 5);
    let stats = NetlistStats::of(&nl);
    assert_eq!(stats.by_kind[&CellKind::Const1], 1);
    assert_eq!(stats.by_kind[&CellKind::Mux], 1);
    // tags from `# tags:` comments
    let tagged: Vec<_> = nl
        .gates()
        .iter()
        .filter(|g| g.tags.no_reassoc || g.tags.monitor)
        .collect();
    assert_eq!(tagged.len(), 2);
    assert!(tagged
        .iter()
        .any(|g| g.kind == CellKind::Xor && g.tags.no_reassoc));
    assert!(tagged
        .iter()
        .any(|g| g.kind == CellKind::Mux && g.tags.monitor));
    // mux semantics: inputs (a=1, b=0, sel) -> sum=1, carry=0,
    // live = sel ? carry : sum
    assert_eq!(nl.evaluate(&[true, false, false]), vec![true, false]);
    assert_eq!(nl.evaluate(&[true, false, true]), vec![false, false]);
}

#[test]
fn ha_verilog_alias_and_ties() {
    let nl = parse_design_path(data("ha.v")).expect("parse ha.v");
    assert_eq!(nl.name(), "ha");
    assert_eq!(nl.inputs().len(), 2);
    assert_eq!(nl.outputs().len(), 3);
    // xor, and, buf (alias), const0 (tie)
    assert_eq!(nl.num_gates(), 4);
    // outputs: sum, carry, tie0
    assert_eq!(nl.evaluate(&[true, false]), vec![true, false, false]);
    assert_eq!(nl.evaluate(&[true, true]), vec![false, true, false]);
}

#[test]
fn rand300_fixture_matches_generator_exactly() {
    // the committed fixture was produced by write_bench from the
    // generator below; parsing it back must reproduce that netlist
    // id-for-id (net ids, gate ids, ports, tags)
    let nl = parse_design_path(data("rand300.bench")).expect("parse rand300.bench");
    let expected = random_circuit(&rand300_config());
    assert_eq!(nl, expected);
    assert_eq!(nl.num_gates(), 300);
    // and the writer is stable: re-exporting gives the committed bytes
    let text = std::fs::read_to_string(data("rand300.bench")).expect("read fixture");
    assert_eq!(write_bench(&nl), text);
}

/// Regenerates `tests/data/rand300.bench`. Run manually after changing
/// the writer or the random generator:
/// `cargo test -p seceda-netlist --test parse_golden -- --ignored regenerate`
#[test]
#[ignore = "fixture regeneration helper, not a test"]
fn regenerate_rand300() {
    let nl = random_circuit(&rand300_config());
    std::fs::write(data("rand300.bench"), write_bench(&nl)).expect("write fixture");
}
