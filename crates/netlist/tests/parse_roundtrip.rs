//! Roundtrip and robustness properties of the `.bench` frontend.
//!
//! Every built-in generator and every random netlist must survive
//! write→parse with full structural equality, and arbitrarily mangled
//! input must come back as a typed [`NetlistError`] — never a panic.

use seceda_netlist::{
    alu_slice, c17, comparator, majority, parity_tree, parse_bench, random_circuit, ripple_adder,
    write_bench, Netlist, NetlistError, RandomCircuitConfig,
};
use seceda_testkit::prelude::*;

fn roundtrip(nl: &Netlist) -> Netlist {
    let text = write_bench(nl);
    parse_bench(&text).unwrap_or_else(|e| panic!("reparse of {} failed: {e}", nl.name()))
}

#[test]
fn all_builtin_generators_roundtrip_exactly() {
    let circuits: Vec<Netlist> = vec![
        c17(),
        ripple_adder(8),
        ripple_adder(16),
        comparator(8),
        parity_tree(16),
        majority(),
        alu_slice(4),
    ];
    for nl in circuits {
        assert_eq!(roundtrip(&nl), nl, "{} roundtrip", nl.name());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_netlists_roundtrip_exactly(
        num_inputs in 1usize..24,
        num_gates in 1usize..400,
        num_outputs in 1usize..12,
        with_xor in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let nl = random_circuit(&RandomCircuitConfig {
            num_inputs,
            num_gates,
            num_outputs,
            with_xor,
            seed,
        });
        prop_assert_eq!(roundtrip(&nl), nl);
    }

    #[test]
    fn truncated_files_error_without_panicking(
        num_gates in 1usize..120,
        seed in any::<u64>(),
        cut in 0usize..4096,
    ) {
        let nl = random_circuit(&RandomCircuitConfig {
            num_inputs: 8,
            num_gates,
            num_outputs: 4,
            with_xor: true,
            seed,
        });
        let text = write_bench(&nl);
        // cut mid-file at a char boundary: parse must return Ok or a
        // typed error, never panic
        let mut cut = cut % (text.len() + 1);
        while !text.is_char_boundary(cut) {
            cut -= 1;
        }
        let _ = parse_bench(&text[..cut]);
    }

    #[test]
    fn mutated_files_error_without_panicking(
        seed in any::<u64>(),
        pos in 0usize..4096,
        replacement in 0u8..128,
    ) {
        let nl = random_circuit(&RandomCircuitConfig {
            num_inputs: 6,
            num_gates: 60,
            num_outputs: 3,
            with_xor: true,
            seed,
        });
        let mut bytes = write_bench(&nl).into_bytes();
        let pos = pos % bytes.len();
        bytes[pos] = replacement;
        if let Ok(text) = String::from_utf8(bytes) {
            let _ = parse_bench(&text);
        }
    }
}

#[test]
fn malformed_inputs_give_specific_typed_errors() {
    // undefined net
    assert_eq!(
        parse_bench("INPUT(a)\ny = AND(a, ghost)\nOUTPUT(y)\n").unwrap_err(),
        NetlistError::UnknownNet("ghost".into())
    );
    // duplicate driver
    assert_eq!(
        parse_bench("INPUT(a)\ny = NOT(a)\ny = BUFF(a)\n").unwrap_err(),
        NetlistError::MultipleDrivers("y".into())
    );
    // combinational loop
    assert_eq!(
        parse_bench("INPUT(a)\nx = AND(a, y)\ny = NOT(x)\nOUTPUT(y)\n").unwrap_err(),
        NetlistError::CombinationalCycle
    );
    // truncated gate line
    assert!(matches!(
        parse_bench("INPUT(a)\ny = NAND(a").unwrap_err(),
        NetlistError::Parse { line: 2, .. }
    ));
    // arity violation
    assert!(matches!(
        parse_bench("INPUT(a)\ny = MUX(a, a)\nOUTPUT(y)\n").unwrap_err(),
        NetlistError::BadArity { .. }
    ));
}
