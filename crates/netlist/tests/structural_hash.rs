//! Property suite for the structural design hash: the incremental
//! update path must be bit-identical to a full re-hash under random
//! splice edits, and dirty tracking must be exactly the fan-out cone.

use seceda_netlist::{
    c17, parse_design, random_circuit, ripple_adder, write_bench, CellKind, DesignFormat, GateTags,
    NetId, Netlist, RandomCircuitConfig, StructuralHash,
};
use seceda_testkit::rng::{Rng, SeedableRng, StdRng};

/// Applies `edits` random `insert_after` splices and checks after each
/// one that the incremental hash matches a full re-hash.
fn check_incremental_edits(mut nl: Netlist, seed: u64, edits: usize) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut h = StructuralHash::of(&nl).expect("hash");
    for step in 0..edits {
        let target = if rng.gen::<bool>() {
            // splice after a random gate output
            let g = rng.gen_range(0..nl.num_gates());
            nl.gates()[g].output
        } else {
            // or after a random primary input
            let k = rng.gen_range(0..nl.inputs().len());
            nl.inputs()[k]
        };
        let kind = match rng.gen_range(0..3u32) {
            0 => CellKind::Not,
            1 => CellKind::Buf,
            _ => CellKind::Xor,
        };
        let extra: Vec<NetId> = if kind == CellKind::Xor {
            vec![nl.add_input(format!("k{step}"))]
        } else {
            Vec::new()
        };
        let before = h.clone();
        nl.insert_after(target, kind, &extra, GateTags::default());
        h.update_after_edit(&nl, &[]).expect("incremental update");
        let full = StructuralHash::of(&nl).expect("full rehash");
        assert_eq!(h, full, "seed {seed:#x} step {step}: incremental diverged");
        assert_ne!(
            h.digest(),
            before.digest(),
            "seed {seed:#x} step {step}: a splice must move the digest"
        );
        // dirty gates: non-empty (the splice itself) and closed under
        // fan-out — every reader of a dirty output is itself dirty
        let dirty = h.dirty_gates(&nl, &before);
        assert!(!dirty.is_empty(), "seed {seed:#x} step {step}");
        let dirty_set: std::collections::HashSet<usize> = dirty.iter().map(|g| g.index()).collect();
        let fanout = nl.fanout();
        for &g in &dirty {
            for &reader in fanout.loads(nl.gates()[g.index()].output) {
                if !nl.gates()[reader.index()].kind.is_sequential() {
                    assert!(
                        dirty_set.contains(&reader.index()),
                        "seed {seed:#x} step {step}: dirty set not closed under fan-out"
                    );
                }
            }
        }
    }
    nl.validate().expect("edited netlist stays well-formed");
}

#[test]
fn incremental_matches_full_on_bench_circuits() {
    check_incremental_edits(c17(), 0xC17, 6);
    check_incremental_edits(ripple_adder(8), 0xADD, 6);
}

#[test]
fn incremental_matches_full_on_random_circuits() {
    for seed in [1u64, 2, 3] {
        let nl = random_circuit(&RandomCircuitConfig {
            num_inputs: 12,
            num_gates: 300,
            num_outputs: 6,
            with_xor: true,
            seed,
        });
        check_incremental_edits(nl, seed, 8);
    }
}

#[test]
fn parsed_and_built_circuits_share_fingerprints() {
    // the .bench round-trip renames internal nets but preserves
    // structure, so every fingerprint and the digest must survive
    let nl = ripple_adder(16);
    let reparsed = parse_design(&write_bench(&nl), DesignFormat::Bench).expect("parse");
    let h = StructuralHash::of(&nl).expect("hash");
    let hr = StructuralHash::of(&reparsed).expect("hash");
    assert_eq!(h.digest(), hr.digest());
    assert_eq!(h.output_cones(), hr.output_cones());
}

#[test]
fn unrelated_designs_do_not_collide() {
    let digests: Vec<_> = [1u64, 2, 3, 4, 5]
        .iter()
        .map(|&seed| {
            let nl = random_circuit(&RandomCircuitConfig {
                seed,
                ..RandomCircuitConfig::default()
            });
            StructuralHash::of(&nl).expect("hash").digest()
        })
        .collect();
    for i in 0..digests.len() {
        for j in i + 1..digests.len() {
            assert_ne!(digests[i], digests[j], "seeds {i} and {j} collided");
        }
    }
}

#[test]
fn scale_smoke_hashes_100k_gates() {
    let nl = random_circuit(&RandomCircuitConfig {
        num_inputs: 64,
        num_gates: 100_000,
        num_outputs: 32,
        with_xor: true,
        seed: 0xB16,
    });
    let mut h = StructuralHash::of(&nl).expect("hash");
    // a single splice re-fingerprints only the fan-out cone, then the
    // state still matches a full re-hash
    let mut edited = nl.clone();
    let target = edited.gates()[50_000].output;
    edited.insert_after(target, CellKind::Not, &[], GateTags::default());
    h.update_after_edit(&edited, &[]).expect("update");
    assert_eq!(h, StructuralHash::of(&edited).expect("full"));
}
