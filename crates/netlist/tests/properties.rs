//! Property-based tests for the netlist IR.

use seceda_netlist::{
    bits_to_u64, format_netlist, parse_netlist, random_circuit, u64_to_bits, CellKind, Netlist,
    RandomCircuitConfig, Word,
};
use seceda_testkit::prelude::*;

fn word_op_circuit(width: usize, op: &str) -> Netlist {
    let mut nl = Netlist::new("w");
    let a = Word::input(&mut nl, "a", width);
    let b = Word::input(&mut nl, "b", width);
    let r = match op {
        "add" => a.add(&mut nl, &b),
        "xor" => a.xor(&mut nl, &b),
        "and" => a.and(&mut nl, &b),
        "or" => a.or(&mut nl, &b),
        _ => unreachable!(),
    };
    r.mark_output(&mut nl, "r");
    nl
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn word_ops_match_integer_semantics(
        width in 1usize..12,
        x in 0u64..4096,
        y in 0u64..4096,
        op_idx in 0usize..4,
    ) {
        let mask = (1u64 << width) - 1;
        let (x, y) = (x & mask, y & mask);
        let op = ["add", "xor", "and", "or"][op_idx];
        let nl = word_op_circuit(width, op);
        let mut inputs = u64_to_bits(x, width);
        inputs.extend(u64_to_bits(y, width));
        let got = bits_to_u64(&nl.evaluate(&inputs));
        let expect = match op {
            "add" => (x + y) & mask,
            "xor" => x ^ y,
            "and" => x & y,
            "or" => x | y,
            _ => unreachable!(),
        };
        prop_assert_eq!(got, expect, "{} {} {}", x, op, y);
    }

    #[test]
    fn rotate_left_matches_u64(width in 1usize..16, v in 0u64..65536, k in 0usize..40) {
        let mask = (1u64 << width) - 1;
        let v = v & mask;
        let mut nl = Netlist::new("rot");
        let a = Word::input(&mut nl, "a", width);
        let r = a.rotate_left(k);
        r.mark_output(&mut nl, "r");
        let got = bits_to_u64(&nl.evaluate(&u64_to_bits(v, width)));
        let kk = (k % width) as u32;
        let expect = if kk == 0 {
            v
        } else {
            ((v << kk) | (v >> (width as u32 - kk))) & mask
        };
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn random_circuits_are_valid_and_roundtrip(seed in 0u64..10_000, gates in 1usize..80) {
        let nl = random_circuit(&RandomCircuitConfig {
            num_inputs: 5,
            num_gates: gates,
            num_outputs: gates.min(4),
            with_xor: true,
            seed,
        });
        prop_assert!(nl.validate().is_ok());
        let back = parse_netlist(&format_netlist(&nl)).expect("parse");
        prop_assert_eq!(back.truth_table(), nl.truth_table());
    }

    #[test]
    fn insert_after_preserves_downstream_function_modulo_inversion(
        seed in 0u64..2000,
        gates in 2usize..30,
    ) {
        // inserting a double inverter after any net is functionally
        // transparent
        let nl = random_circuit(&RandomCircuitConfig {
            num_inputs: 4,
            num_gates: gates,
            num_outputs: 2,
            with_xor: true,
            seed,
        });
        let reference = nl.truth_table();
        let mut modified = nl.clone();
        let target = modified.gates()[0].output;
        let stage1 = modified.insert_after(target, CellKind::Not, &[], Default::default());
        modified.insert_after(stage1, CellKind::Not, &[], Default::default());
        prop_assert!(modified.validate().is_ok());
        prop_assert_eq!(modified.truth_table(), reference);
    }

    #[test]
    fn replace_net_uses_with_equivalent_driver_is_transparent(
        seed in 0u64..2000,
        gates in 2usize..30,
    ) {
        let nl = random_circuit(&RandomCircuitConfig {
            num_inputs: 4,
            num_gates: gates,
            num_outputs: 2,
            with_xor: true,
            seed,
        });
        let reference = nl.truth_table();
        let mut modified = nl.clone();
        let target = modified.gates()[0].output;
        let copy = modified.add_gate(CellKind::Buf, &[target]);
        // redirect every use of target to the buffer... except the buffer
        modified.replace_net_uses(target, copy);
        let gid = modified.net(copy).driver.expect("driver");
        modified.gate_mut(gid).inputs[0] = target;
        prop_assert!(modified.validate().is_ok());
        prop_assert_eq!(modified.truth_table(), reference);
    }
}
