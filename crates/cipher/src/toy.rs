//! A 16-bit SPN toy cipher for exhaustive fault and leakage experiments.
//!
//! Structure per round: AddRoundKey → SubNibbles (PRESENT S-box on four
//! 4-bit nibbles) → PermuteBits (PRESENT-style P-layer); a final key
//! addition follows the last round. The 16-bit block size keeps
//! differential fault analysis and exhaustive search trivially fast while
//! exercising the same code paths as a real cipher.

use crate::netlist_gen::table_lookup;
use seceda_netlist::{Netlist, Word};

/// The PRESENT 4-bit S-box.
pub const TOY_SBOX: [u8; 16] = [
    0xC, 0x5, 0x6, 0xB, 0x9, 0x0, 0xA, 0xD, 0x3, 0xE, 0xF, 0x8, 0x4, 0x7, 0x1, 0x2,
];

/// Bit permutation: output bit `i` takes input bit `TOY_PERM[i]`.
///
/// PRESENT-style spreading: `TOY_PERM[i] = (4 * i) mod 15` for `i < 15`,
/// fixing bit 15.
pub const TOY_PERM: [usize; 16] = [0, 4, 8, 12, 1, 5, 9, 13, 2, 6, 10, 14, 3, 7, 11, 15];

/// Number of rounds.
pub const TOY_ROUNDS: usize = 4;

/// The toy SPN cipher with a fixed 16-bit master key.
///
/// The round keys are rotations of the master key (`rk_r = key <<< r`),
/// which is cryptographically weak but structurally faithful.
///
/// # Example
///
/// ```
/// use seceda_cipher::ToyCipher;
///
/// let cipher = ToyCipher::new(0xBEEF);
/// let ct = cipher.encrypt(0x1234);
/// assert_ne!(ct, 0x1234);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ToyCipher {
    key: u16,
}

impl ToyCipher {
    /// Creates a cipher with the given master key.
    pub fn new(key: u16) -> Self {
        ToyCipher { key }
    }

    /// The master key.
    pub fn key(&self) -> u16 {
        self.key
    }

    /// The round key for round `r` (0-based; round `TOY_ROUNDS` is the
    /// final whitening key).
    pub fn round_key(&self, r: usize) -> u16 {
        self.key.rotate_left(r as u32)
    }

    fn sub_nibbles(x: u16) -> u16 {
        let mut y = 0u16;
        for n in 0..4 {
            let nib = (x >> (4 * n)) & 0xF;
            y |= (TOY_SBOX[nib as usize] as u16) << (4 * n);
        }
        y
    }

    fn permute(x: u16) -> u16 {
        let mut y = 0u16;
        for (i, &src) in TOY_PERM.iter().enumerate() {
            y |= ((x >> src) & 1) << i;
        }
        y
    }

    /// Encrypts one 16-bit block.
    pub fn encrypt(&self, plaintext: u16) -> u16 {
        let mut state = plaintext;
        for r in 0..TOY_ROUNDS {
            state ^= self.round_key(r);
            state = Self::sub_nibbles(state);
            state = Self::permute(state);
        }
        state ^ self.round_key(TOY_ROUNDS)
    }

    /// Encrypts with a single-bit fault injected into the state right
    /// before the S-box layer of round `fault_round` — the access pattern
    /// differential fault analysis exploits.
    ///
    /// # Panics
    ///
    /// Panics if `fault_round >= TOY_ROUNDS` or `fault_bit >= 16`.
    pub fn encrypt_with_fault(&self, plaintext: u16, fault_round: usize, fault_bit: usize) -> u16 {
        assert!(fault_round < TOY_ROUNDS, "fault round out of range");
        assert!(fault_bit < 16, "fault bit out of range");
        let mut state = plaintext;
        for r in 0..TOY_ROUNDS {
            state ^= self.round_key(r);
            if r == fault_round {
                state ^= 1 << fault_bit;
            }
            state = Self::sub_nibbles(state);
            state = Self::permute(state);
        }
        state ^ self.round_key(TOY_ROUNDS)
    }

    /// Builds the full gate-level datapath: inputs `pt\[16\]` and `key\[16\]`,
    /// output `ct\[16\]`. The key is a primary input so locking, DFT and
    /// scan-attack experiments can observe or protect it.
    pub fn netlist() -> Netlist {
        let mut nl = Netlist::new("toy_cipher");
        let pt = Word::input(&mut nl, "pt", 16);
        let key = Word::input(&mut nl, "key", 16);
        let ct = Self::datapath(&mut nl, &pt, &key);
        ct.mark_output(&mut nl, "ct");
        nl
    }

    /// Instantiates the encryption datapath inside an existing netlist.
    ///
    /// # Panics
    ///
    /// Panics if `pt` or `key` is not 16 bits wide.
    pub fn datapath(nl: &mut Netlist, pt: &Word, key: &Word) -> Word {
        assert_eq!(pt.width(), 16, "plaintext must be 16 bits");
        assert_eq!(key.width(), 16, "key must be 16 bits");
        let sbox_table: Vec<u64> = TOY_SBOX.iter().map(|&v| v as u64).collect();
        let mut state = pt.clone();
        for r in 0..TOY_ROUNDS {
            let rk = key.rotate_left(r);
            state = state.xor(nl, &rk);
            // S-box layer, nibble by nibble
            let mut bits = Vec::with_capacity(16);
            for n in 0..4 {
                let nib = Word::new(state.bits()[4 * n..4 * n + 4].to_vec());
                let sub = table_lookup(nl, &nib, &sbox_table, 4);
                bits.extend_from_slice(sub.bits());
            }
            let subbed = Word::new(bits);
            // P-layer is pure wiring
            let permuted: Vec<_> = TOY_PERM.iter().map(|&src| subbed.bits()[src]).collect();
            state = Word::new(permuted);
        }
        let final_key = key.rotate_left(TOY_ROUNDS);
        state.xor(nl, &final_key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seceda_netlist::{bits_to_u64, u64_to_bits};

    #[test]
    fn sbox_is_permutation() {
        let mut seen = [false; 16];
        for &v in TOY_SBOX.iter() {
            assert!(!seen[v as usize]);
            seen[v as usize] = true;
        }
    }

    #[test]
    fn perm_is_permutation() {
        let mut seen = [false; 16];
        for &p in TOY_PERM.iter() {
            assert!(!seen[p]);
            seen[p] = true;
        }
    }

    #[test]
    fn encryption_is_injective() {
        let cipher = ToyCipher::new(0xACE1);
        let mut seen = vec![false; 1 << 16];
        for pt in 0..=u16::MAX {
            let ct = cipher.encrypt(pt);
            assert!(!seen[ct as usize], "collision at pt {pt:#x}");
            seen[ct as usize] = true;
        }
    }

    #[test]
    fn different_keys_differ() {
        let a = ToyCipher::new(0x0000).encrypt(0x1234);
        let b = ToyCipher::new(0x0001).encrypt(0x1234);
        assert_ne!(a, b);
    }

    #[test]
    fn fault_changes_ciphertext() {
        let cipher = ToyCipher::new(0x5AA5);
        let clean = cipher.encrypt(0x0F0F);
        let faulty = cipher.encrypt_with_fault(0x0F0F, TOY_ROUNDS - 1, 3);
        assert_ne!(clean, faulty);
    }

    #[test]
    fn netlist_matches_software_model() {
        let nl = ToyCipher::netlist();
        for (pt, key) in [
            (0x0000u16, 0x0000u16),
            (0x1234, 0xBEEF),
            (0xFFFF, 0xFFFF),
            (0xA5A5, 0x0F0F),
            (0x0001, 0x8000),
        ] {
            let mut inputs = u64_to_bits(pt as u64, 16);
            inputs.extend(u64_to_bits(key as u64, 16));
            let hw = bits_to_u64(&nl.evaluate(&inputs)) as u16;
            let sw = ToyCipher::new(key).encrypt(pt);
            assert_eq!(hw, sw, "pt={pt:#x} key={key:#x}");
        }
    }

    #[test]
    fn round_keys_rotate() {
        let c = ToyCipher::new(0x8001);
        assert_eq!(c.round_key(0), 0x8001);
        assert_eq!(c.round_key(1), 0x0003);
    }
}
