//! Gate-level generation of table lookups and cipher slices.

use crate::aes::AES_SBOX;
use seceda_netlist::{CellKind, NetId, Netlist, Word};

/// Builds a Shannon-expansion multiplexer tree computing `leaves[sel]`
/// where `sel` is formed from `sel_bits` (LSB first).
///
/// Constant subtrees are folded, so sparse tables stay small.
///
/// # Panics
///
/// Panics if `leaves.len() != 2^sel_bits.len()`.
pub fn mux_tree(nl: &mut Netlist, sel_bits: &[NetId], leaves: &[bool]) -> NetId {
    assert_eq!(
        leaves.len(),
        1usize << sel_bits.len(),
        "leaf count must be 2^selector bits"
    );
    if leaves.iter().all(|&b| b) {
        return nl.add_gate(CellKind::Const1, &[]);
    }
    if leaves.iter().all(|&b| !b) {
        return nl.add_gate(CellKind::Const0, &[]);
    }
    if sel_bits.len() == 1 {
        // leaves = [f(0), f(1)]
        return match (leaves[0], leaves[1]) {
            (false, true) => nl.add_gate(CellKind::Buf, &[sel_bits[0]]),
            (true, false) => nl.add_gate(CellKind::Not, &[sel_bits[0]]),
            _ => unreachable!("constant cases handled above"),
        };
    }
    // split on the most significant selector bit
    let msb = sel_bits[sel_bits.len() - 1];
    let rest = &sel_bits[..sel_bits.len() - 1];
    let half = leaves.len() / 2;
    let lo = mux_tree(nl, rest, &leaves[..half]);
    let hi = mux_tree(nl, rest, &leaves[half..]);
    nl.add_gate(CellKind::Mux, &[msb, lo, hi])
}

/// Instantiates a combinational lookup of `table` indexed by the word
/// `index`, producing an `out_width`-bit result word.
///
/// # Panics
///
/// Panics if `table.len() != 2^index.width()`.
pub fn table_lookup(nl: &mut Netlist, index: &Word, table: &[u64], out_width: usize) -> Word {
    assert_eq!(
        table.len(),
        1usize << index.width(),
        "table size must be 2^index width"
    );
    let bits = (0..out_width)
        .map(|bit| {
            let leaves: Vec<bool> = table.iter().map(|&v| (v >> bit) & 1 == 1).collect();
            mux_tree(nl, index.bits(), &leaves)
        })
        .collect();
    Word::new(bits)
}

/// Generates a netlist computing the AES S-box: input `x\[8\]`, output
/// `y\[8\] = SBOX[x]`.
pub fn sbox_netlist() -> Netlist {
    let mut nl = Netlist::new("aes_sbox");
    let x = Word::input(&mut nl, "x", 8);
    let table: Vec<u64> = AES_SBOX.iter().map(|&v| v as u64).collect();
    let y = table_lookup(&mut nl, &x, &table, 8);
    y.mark_output(&mut nl, "y");
    nl
}

/// Generates the classical CPA target slice: inputs `pt\[8\]` and `key\[8\]`,
/// output `s\[8\] = SBOX[pt ^ key]` — the first-round S-box output of one
/// AES byte lane.
pub fn sbox_first_round_netlist() -> Netlist {
    let mut nl = Netlist::new("aes_round1_byte");
    let pt = Word::input(&mut nl, "pt", 8);
    let key = Word::input(&mut nl, "key", 8);
    let x = pt.xor(&mut nl, &key);
    let table: Vec<u64> = AES_SBOX.iter().map(|&v| v as u64).collect();
    let s = table_lookup(&mut nl, &x, &table, 8);
    s.mark_output(&mut nl, "s");
    nl
}

/// Like [`sbox_first_round_netlist`] but with a register bank on the
/// S-box output: each output bit feeds a DFF whose output is the primary
/// output. This is the canonical CPA victim — the attack samples the
/// power of the register update (Hamming distance of the stored bytes).
pub fn sbox_first_round_registered() -> Netlist {
    let mut nl = Netlist::new("aes_round1_byte_reg");
    let pt = Word::input(&mut nl, "pt", 8);
    let key = Word::input(&mut nl, "key", 8);
    let x = pt.xor(&mut nl, &key);
    let table: Vec<u64> = AES_SBOX.iter().map(|&v| v as u64).collect();
    let s = table_lookup(&mut nl, &x, &table, 8);
    for (i, &bit) in s.bits().iter().enumerate() {
        let q = nl.add_gate(CellKind::Dff, &[bit]);
        nl.mark_output(q, format!("s[{i}]"));
    }
    nl
}

#[cfg(test)]
mod tests {
    use super::*;
    use seceda_netlist::{bits_to_u64, u64_to_bits};

    #[test]
    fn registered_slice_pipelines_by_one_cycle() {
        let nl = sbox_first_round_registered();
        assert_eq!(nl.dffs().len(), 8);
        let mut inputs = u64_to_bits(0x12, 8);
        inputs.extend(u64_to_bits(0x34, 8));
        let state = vec![false; 8];
        let (out0, state1) = nl.step(&inputs, &state).expect("step");
        assert_eq!(bits_to_u64(&out0), 0); // register still holds reset
        let (out1, _) = nl.step(&inputs, &state1).expect("step");
        assert_eq!(bits_to_u64(&out1) as u8, AES_SBOX[0x12 ^ 0x34]);
    }

    #[test]
    fn mux_tree_matches_table() {
        let mut nl = Netlist::new("t");
        let sel = vec![nl.add_input("s0"), nl.add_input("s1"), nl.add_input("s2")];
        let leaves = [true, false, false, true, true, true, false, false];
        let y = mux_tree(&mut nl, &sel, &leaves);
        nl.mark_output(y, "y");
        for (i, &expect) in leaves.iter().enumerate() {
            assert_eq!(
                nl.evaluate(&u64_to_bits(i as u64, 3))[0],
                expect,
                "index {i}"
            );
        }
    }

    #[test]
    fn constant_tables_fold() {
        let mut nl = Netlist::new("t");
        let sel = vec![nl.add_input("s0"), nl.add_input("s1")];
        let y = mux_tree(&mut nl, &sel, &[true; 4]);
        nl.mark_output(y, "y");
        // a single const gate, no muxes
        assert_eq!(nl.num_gates(), 1);
        assert!(nl.evaluate(&[false, true])[0]);
    }

    #[test]
    fn sbox_netlist_matches_table() {
        let nl = sbox_netlist();
        for x in [0usize, 1, 0x53, 0x7f, 0xca, 0xff] {
            let out = bits_to_u64(&nl.evaluate(&u64_to_bits(x as u64, 8)));
            assert_eq!(out as u8, AES_SBOX[x], "x = {x:#x}");
        }
    }

    #[test]
    fn sbox_netlist_exhaustive() {
        let nl = sbox_netlist();
        for x in 0..256usize {
            let out = bits_to_u64(&nl.evaluate(&u64_to_bits(x as u64, 8)));
            assert_eq!(out as u8, AES_SBOX[x]);
        }
    }

    #[test]
    fn first_round_slice_matches_model() {
        let nl = sbox_first_round_netlist();
        for (pt, key) in [(0u8, 0u8), (0x12, 0x34), (0xff, 0xa5), (0x80, 0x01)] {
            let mut inputs = u64_to_bits(pt as u64, 8);
            inputs.extend(u64_to_bits(key as u64, 8));
            let out = bits_to_u64(&nl.evaluate(&inputs)) as u8;
            assert_eq!(out, AES_SBOX[(pt ^ key) as usize]);
        }
    }
}
