//! # seceda-cipher
//!
//! Cryptographic workload substrate for the `seceda` toolkit.
//!
//! Side-channel, fault-injection and test experiments all need a concrete
//! victim. This crate provides two, in both software-model and gate-level
//! form:
//!
//! * [`Aes128`] — the full AES-128 block cipher (FIPS-197), the standard
//!   side-channel target, plus gate-level netlist generators for its
//!   S-box and first-round byte slice;
//! * [`ToyCipher`] — a 16-bit SPN ("PRESENT-like": 4-bit S-boxes and a
//!   bit permutation) small enough for exhaustive fault analysis, with a
//!   full-datapath netlist generator.
//!
//! # Example
//!
//! ```
//! use seceda_cipher::Aes128;
//!
//! let key = [0u8; 16];
//! let aes = Aes128::new(&key);
//! let ct = aes.encrypt_block(&[0u8; 16]);
//! assert_eq!(ct[0], 0x66); // AES-128(0,0) starts 66 e9 4b d4 ...
//! ```

mod aes;
mod netlist_gen;
mod toy;

pub use aes::{Aes128, AES_SBOX};
pub use netlist_gen::{
    mux_tree, sbox_first_round_netlist, sbox_first_round_registered, sbox_netlist, table_lookup,
};
pub use toy::{ToyCipher, TOY_PERM, TOY_ROUNDS, TOY_SBOX};
