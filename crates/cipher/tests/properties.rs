//! Property-based tests for the cipher substrate.

use seceda_cipher::{Aes128, ToyCipher, AES_SBOX};
use seceda_netlist::{bits_to_u64, u64_to_bits};
use seceda_testkit::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn toy_netlist_always_matches_software(pt in any::<u16>(), key in any::<u16>()) {
        let nl = ToyCipher::netlist();
        let mut inputs = u64_to_bits(pt as u64, 16);
        inputs.extend(u64_to_bits(key as u64, 16));
        let hw = bits_to_u64(&nl.evaluate(&inputs)) as u16;
        prop_assert_eq!(hw, ToyCipher::new(key).encrypt(pt));
    }

    #[test]
    fn toy_faulty_encryption_differs_from_clean(
        pt in any::<u16>(),
        key in any::<u16>(),
        round in 0usize..seceda_cipher::TOY_ROUNDS,
        bit in 0usize..16,
    ) {
        let cipher = ToyCipher::new(key);
        // a single-bit fault before an S-box layer always changes the
        // ciphertext (S-boxes are bijections, the P-layer is a wiring
        // permutation, key addition is XOR)
        prop_assert_ne!(cipher.encrypt(pt), cipher.encrypt_with_fault(pt, round, bit));
    }

    #[test]
    fn aes_different_keys_give_different_ciphertexts(
        key_byte in any::<u8>(),
        other in any::<u8>(),
    ) {
        prop_assume!(key_byte != other);
        let mut k1 = [0u8; 16];
        k1[0] = key_byte;
        let mut k2 = [0u8; 16];
        k2[0] = other;
        let pt = [0x42u8; 16];
        prop_assert_ne!(
            Aes128::new(&k1).encrypt_block(&pt),
            Aes128::new(&k2).encrypt_block(&pt)
        );
    }

    #[test]
    fn first_round_target_is_consistent(pt in any::<u8>(), key in any::<u8>()) {
        let mut k = [0u8; 16];
        k[3] = key;
        let aes = Aes128::new(&k);
        prop_assert_eq!(
            aes.first_round_sbox_byte(pt, 3),
            AES_SBOX[(pt ^ key) as usize]
        );
    }
}
