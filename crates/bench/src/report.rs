//! Perf-regression gating over `BENCH_*.json` runs.
//!
//! The committed `BENCH_baseline.json` at the repo root holds one
//! schema-valid bench document per (bench, mode): the full-mode results
//! behind the paper tables plus quick-mode smoke results, merged by
//! `bench_report --update-baseline`. A fresh run is compared case by
//! case on each bench's *primary* wall-time metric with a relative
//! noise tolerance (default 25%, `SECEDA_BENCH_TOL` overrides):
//!
//! * `fault_sim` → `packed_ns`
//! * `sat_attack` → `incremental_ns`
//! * `parse` → `parse_ns` and `topo_ns`
//! * `compose` → `incremental_ns`
//!
//! Timings are machine-dependent, so the gate is *advisory* by default
//! (`scripts/verify.sh` prints the delta table and carries on);
//! `SECEDA_BENCH_STRICT=1` turns any regression beyond tolerance into a
//! nonzero exit for controlled, same-machine environments such as a
//! dedicated perf runner.

use crate::schema::{case_key, validate_bench};
use seceda_testkit::json::Json;

/// Primary wall-time metrics gated per bench.
pub fn primary_metrics(bench: &str) -> &'static [&'static str] {
    match bench {
        "fault_sim" => &["packed_ns"],
        "sat_attack" => &["incremental_ns"],
        "parse" => &["parse_ns", "topo_ns"],
        "compose" => &["incremental_ns"],
        _ => &[],
    }
}

/// One (bench, case, metric) comparison against the baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct DeltaRow {
    /// Bench name (`fault_sim`, ...).
    pub bench: String,
    /// Case name within the bench.
    pub case: String,
    /// Metric name (`packed_ns`, ...).
    pub metric: String,
    /// Baseline value, `None` for a case not in the baseline yet.
    pub base: Option<u64>,
    /// Fresh value.
    pub fresh: u64,
    /// `fresh / base` (`None` without a baseline or for a zero base).
    pub ratio: Option<f64>,
}

impl DeltaRow {
    /// Whether this row exceeds the tolerance (`fresh > base * (1+tol)`).
    pub fn regressed(&self, tolerance: f64) -> bool {
        self.ratio.is_some_and(|r| r > 1.0 + tolerance)
    }
}

fn metric_u64(row: &Json, metric: &str) -> Option<u64> {
    match row.get(metric) {
        Some(Json::Int(v)) => Some((*v).max(0) as u64),
        Some(Json::Num(v)) if *v >= 0.0 => Some(*v as u64),
        _ => None,
    }
}

fn rows_of(doc: &Json) -> &[Json] {
    match doc.get("results") {
        Some(Json::Arr(rows)) => rows,
        _ => &[],
    }
}

fn case_of<'a>(doc: &Json, row: &'a Json) -> Option<&'a str> {
    let bench = match doc.get("bench") {
        Some(Json::Str(b)) => b.as_str(),
        _ => return None,
    };
    match row.get(case_key(bench)) {
        Some(Json::Str(c)) => Some(c),
        _ => None,
    }
}

/// Looks up `(bench, case, metric)` across a set of bench documents.
fn lookup(docs: &[Json], bench: &str, case: &str, metric: &str) -> Option<u64> {
    docs.iter()
        .filter(|d| matches!(d.get("bench"), Some(Json::Str(b)) if b == bench))
        .flat_map(|d| rows_of(d).iter().map(move |r| (d, r)))
        .find(|(d, r)| case_of(d, r) == Some(case))
        .and_then(|(_, r)| metric_u64(r, metric))
}

/// Compares fresh bench documents against baseline documents on each
/// bench's primary metrics. One [`DeltaRow`] per fresh (case, metric);
/// baseline cases with no fresh counterpart are skipped (a quick run
/// never exercises the full-mode cases).
pub fn compare(fresh: &[Json], baseline: &[Json]) -> Vec<DeltaRow> {
    let mut out = Vec::new();
    for doc in fresh {
        let bench = match doc.get("bench") {
            Some(Json::Str(b)) => b.clone(),
            _ => continue,
        };
        for row in rows_of(doc) {
            let Some(case) = case_of(doc, row) else {
                continue;
            };
            for &metric in primary_metrics(&bench) {
                let Some(fresh_v) = metric_u64(row, metric) else {
                    continue;
                };
                let base = lookup(baseline, &bench, case, metric);
                let ratio = base.filter(|&b| b > 0).map(|b| fresh_v as f64 / b as f64);
                out.push(DeltaRow {
                    bench: bench.clone(),
                    case: case.to_string(),
                    metric: metric.to_string(),
                    base,
                    fresh: fresh_v,
                    ratio,
                });
            }
        }
    }
    out
}

/// Whether any row regresses beyond `tolerance`.
pub fn has_regression(rows: &[DeltaRow], tolerance: f64) -> bool {
    rows.iter().any(|r| r.regressed(tolerance))
}

/// The process exit code of a gating run: regressions are fatal only in
/// strict mode (`SECEDA_BENCH_STRICT=1`); otherwise the gate is
/// advisory and always exits 0.
pub fn gate_exit_code(rows: &[DeltaRow], tolerance: f64, strict: bool) -> u8 {
    u8::from(strict && has_regression(rows, tolerance))
}

/// Renders the delta table. Rows beyond tolerance are marked
/// `REGRESSED`, rows without a baseline `new`.
pub fn render_table(rows: &[DeltaRow], tolerance: f64) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<12} {:<18} {:<16} {:>14} {:>14} {:>8}  verdict",
        "bench", "case", "metric", "base_ns", "fresh_ns", "delta"
    );
    for r in rows {
        let (base, delta, verdict) = match (r.base, r.ratio) {
            (Some(b), Some(ratio)) => (
                b.to_string(),
                format!("{:+.1}%", (ratio - 1.0) * 100.0),
                if r.regressed(tolerance) {
                    "REGRESSED"
                } else {
                    "ok"
                },
            ),
            _ => ("-".into(), "-".into(), "new"),
        };
        let _ = writeln!(
            out,
            "{:<12} {:<18} {:<16} {:>14} {:>14} {:>8}  {}",
            r.bench, r.case, r.metric, base, r.fresh, delta, verdict
        );
    }
    out
}

/// Parses a baseline file: a JSON array of schema-valid bench documents.
///
/// # Errors
///
/// Syntax errors and schema violations, with the offending entry index.
pub fn parse_baseline(text: &str) -> Result<Vec<Json>, String> {
    let doc = Json::parse(text).map_err(|e| format!("invalid JSON: {e}"))?;
    let Json::Arr(entries) = doc else {
        return Err("baseline must be a JSON array of bench documents".into());
    };
    for (i, entry) in entries.iter().enumerate() {
        validate_bench(entry).map_err(|e| format!("baseline[{i}]: {e}"))?;
    }
    Ok(entries)
}

/// Merges fresh documents into a baseline: a fresh document replaces
/// the baseline entry with the same (bench, quick) pair, and is
/// appended otherwise. Entries stay sorted by (bench, quick) so the
/// serialized baseline is stable.
pub fn merge_baseline(baseline: &[Json], fresh: &[Json]) -> Vec<Json> {
    let key = |d: &Json| {
        (
            match d.get("bench") {
                Some(Json::Str(b)) => b.clone(),
                _ => String::new(),
            },
            matches!(d.get("quick"), Some(Json::Bool(true))),
        )
    };
    let mut merged: Vec<Json> = baseline.to_vec();
    for doc in fresh {
        let k = key(doc);
        match merged.iter_mut().find(|d| key(d) == k) {
            Some(slot) => *slot = doc.clone(),
            None => merged.push(doc.clone()),
        }
    }
    merged.sort_by_key(&key);
    merged
}

/// Serializes a baseline as pretty-enough JSON: one bench document per
/// line inside the array, so diffs stay per-bench.
pub fn render_baseline(entries: &[Json]) -> String {
    let mut out = String::from("[\n");
    for (i, e) in entries.iter().enumerate() {
        out.push_str(&e.render());
        out.push_str(if i + 1 < entries.len() { ",\n" } else { "\n" });
    }
    out.push_str("]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(bench: &str, case_field: &str, case: &str, metric: &str, value: i64) -> Json {
        Json::obj()
            .field("bench", bench)
            .field("quick", true)
            .field(
                "results",
                vec![Json::obj()
                    .field(case_field, case)
                    .field(metric, value)
                    .build()],
            )
            .build()
    }

    #[test]
    fn injected_regression_beyond_tolerance_gates_nonzero_under_strict() {
        let baseline = vec![doc(
            "sat_attack",
            "case",
            "c17_xor4",
            "incremental_ns",
            1_000_000,
        )];
        // fresh run is 50% slower: well past the 25% tolerance
        let fresh = vec![doc(
            "sat_attack",
            "case",
            "c17_xor4",
            "incremental_ns",
            1_500_000,
        )];
        let rows = compare(&fresh, &baseline);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].base, Some(1_000_000));
        assert_eq!(rows[0].fresh, 1_500_000);
        assert!(has_regression(&rows, 0.25));
        assert_eq!(gate_exit_code(&rows, 0.25, true), 1, "strict mode gates");
        assert_eq!(
            gate_exit_code(&rows, 0.25, false),
            0,
            "advisory mode warns only"
        );
        assert!(render_table(&rows, 0.25).contains("REGRESSED"));
    }

    #[test]
    fn within_tolerance_and_improvements_pass() {
        let baseline = vec![doc("fault_sim", "circuit", "random_60", "packed_ns", 1_000)];
        for fresh_ns in [800i64, 1_000, 1_200] {
            let fresh = vec![doc(
                "fault_sim",
                "circuit",
                "random_60",
                "packed_ns",
                fresh_ns,
            )];
            let rows = compare(&fresh, &baseline);
            assert!(!has_regression(&rows, 0.25), "{fresh_ns} within tolerance");
            assert_eq!(gate_exit_code(&rows, 0.25, true), 0);
        }
    }

    #[test]
    fn unknown_cases_are_new_not_regressed() {
        let baseline = vec![doc("parse", "case", "parse_1k", "parse_ns", 500)];
        let fresh = vec![doc("parse", "case", "parse_9k", "parse_ns", 99_999)];
        let rows = compare(&fresh, &baseline);
        // only parse_ns is present in the row; absent metrics are skipped
        assert_eq!(rows.len(), 1);
        let parse_row = rows.iter().find(|r| r.metric == "parse_ns").unwrap();
        assert_eq!(parse_row.base, None);
        assert!(!has_regression(&rows, 0.25));
        assert!(render_table(&rows, 0.25).contains("new"));
    }

    #[test]
    fn merge_replaces_same_mode_and_keeps_other_entries() {
        let full = doc("parse", "case", "parse_100k", "parse_ns", 9);
        let full = match full {
            Json::Obj(mut f) => {
                f[1].1 = Json::Bool(false); // quick=false
                Json::Obj(f)
            }
            _ => unreachable!(),
        };
        let old_quick = doc("parse", "case", "parse_1k", "parse_ns", 100);
        let new_quick = doc("parse", "case", "parse_1k", "parse_ns", 90);
        let merged = merge_baseline(&[full.clone(), old_quick], &[new_quick.clone()]);
        assert_eq!(merged.len(), 2);
        assert!(merged.contains(&full));
        assert!(merged.contains(&new_quick));
        // round-trips through the baseline serializer
        let parsed = parse_baseline(&render_baseline(&merge_baseline(&[], &[]))).unwrap();
        assert!(parsed.is_empty());
    }

    #[test]
    fn baseline_entries_are_schema_checked() {
        let err =
            parse_baseline(r#"[{"bench":"fault_sim","quick":true,"results":[{}]}]"#).unwrap_err();
        assert!(err.starts_with("baseline[0]:"), "{err}");
    }
}
