//! Emits the flow telemetry of both EDA flows as JSON-lines on stdout:
//! first the raw span/counter/gauge events, then one `breakdown` line
//! per design with the per-stage wall-time rollup. Every line is a
//! standalone JSON object parseable by `seceda_testkit::json`.
//!
//! ```sh
//! cargo run -p seceda-bench --release --bin trace_snapshot
//! ```

use seceda_bench::{masked_and_gadget, stage_breakdown, traced_flows};
use seceda_testkit::json::Json;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let designs = vec![
        seceda_netlist::c17(),
        masked_and_gadget().0.netlist,
        seceda_netlist::majority(),
    ];
    for nl in &designs {
        let (_, _, events) = traced_flows(nl)?;
        println!(
            "{}",
            Json::obj()
                .field("type", "design")
                .field("name", nl.name())
                .field("gates", nl.num_gates())
                .build()
                .render()
        );
        print!("{}", seceda_trace::to_json_lines(&events));
        println!(
            "{}",
            Json::obj()
                .field("type", "breakdown")
                .field("design", nl.name())
                .field("stages", stage_breakdown(&events))
                .build()
                .render()
        );
    }
    Ok(())
}
