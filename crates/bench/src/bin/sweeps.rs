//! Regenerates the quantitative series of the reproduction: the Fig. 2
//! experiment and the Sec. IV step-metric sweeps.
//!
//! ```sh
//! cargo run -p seceda-bench --release --bin sweeps
//! ```

use seceda_bench::masked_and_gadget;
use seceda_core::explore;
use seceda_layout::{place, proximity_attack, route, split_at, PlacementConfig, RouteConfig};
use seceda_lock::{sat_attack, xor_lock};
use seceda_netlist::{c17, random_circuit, NetlistStats, RandomCircuitConfig};
use seceda_puf::{collect_crps, model_arbiter_puf, ArbiterPuf, ArbiterPufConfig};
use seceda_sca::{acquire_fixed_vs_random, first_order_leaks, tvla, MaskedNetlist, TraceCampaign};
use seceda_synth::{reassociate, SynthesisMode};

fn main() {
    // --- Fig. 2 ---
    let (masked, model) = masked_and_gadget();
    let (classical, report) = reassociate(&masked.netlist, SynthesisMode::Classical);
    println!("=== Fig. 2: ISW AND gadget vs security-unaware synthesis ===");
    println!(
        "probing leaks: designed {} | classical synthesis ({} factorings) {}",
        first_order_leaks(&masked.netlist, &model).len(),
        report.factorings,
        first_order_leaks(&classical, &model).len()
    );
    println!("\nTVLA max|t| vs trace count (threshold 4.5):");
    println!("{:>8} {:>12} {:>12}", "traces", "secure", "broken");
    for traces in [200usize, 500, 1000, 2000, 5000] {
        let campaign = TraceCampaign {
            traces_per_group: traces,
            ..TraceCampaign::default()
        };
        let ok = acquire_fixed_vs_random(&masked, &[true, true], &campaign).expect("traces");
        let broken = MaskedNetlist {
            netlist: classical.clone(),
            ..masked.clone()
        };
        let bad = acquire_fixed_vs_random(&broken, &[true, true], &campaign).expect("traces");
        println!(
            "{:>8} {:>12.2} {:>12.2}",
            traces,
            tvla(&ok.fixed, &ok.random).max_abs_t,
            tvla(&bad.fixed, &bad.random).max_abs_t
        );
    }

    // --- step metrics ---
    println!("\n=== Sec. IV: step-function metrics ===");
    let nl = c17();
    let sat = explore(
        "SAT-attack queries vs key width (XOR locking)",
        &[2.0, 4.0, 8.0, 16.0, 24.0, 32.0],
        |bits| {
            let locked = xor_lock(&nl, bits as usize, 5);
            sat_attack(&locked, |x| nl.evaluate(x))
                .expect("attack")
                .expect("key")
                .iterations as f64
        },
    );
    let area = explore(
        "area (GE) vs key width",
        &[2.0, 4.0, 8.0, 16.0, 24.0, 32.0],
        |bits| NetlistStats::of(&xor_lock(&nl, bits as usize, 5).netlist).area_ge,
    );

    let host = random_circuit(&RandomCircuitConfig {
        num_gates: 120,
        num_inputs: 10,
        num_outputs: 6,
        ..RandomCircuitConfig::default()
    });
    let placement = place(&host, &PlacementConfig::default());
    let routed = route(&host, &placement, &RouteConfig::default());
    let ccr = explore(
        "proximity-attack CCR vs split layer",
        &[2.0, 3.0, 4.0, 5.0, 6.0],
        |layer| proximity_attack(&host, &split_at(&routed, layer as u8)).ccr,
    );

    let config = ArbiterPufConfig {
        noise_sigma: 0.0,
        ..ArbiterPufConfig::default()
    };
    let puf = ArbiterPuf::manufacture(&config, 99);
    let test = collect_crps(|c| puf.respond_ideal(c), 32, 400, 1);
    let puf_sweep = explore(
        "PUF modeling accuracy vs training CRPs",
        &[10.0, 30.0, 100.0, 300.0, 1000.0, 3000.0],
        |n| {
            let train = collect_crps(|c| puf.respond_ideal(c), 32, n as usize, 2);
            model_arbiter_puf(&train, &test, 25, 0.1).accuracy
        },
    );

    for sweep in [&sat, &ccr, &puf_sweep, &area] {
        println!("\n{} (step score {:.2}):", sweep.name, sweep.step_score());
        for p in &sweep.points {
            println!("  {:>8.0} -> {:>10.3}", p.parameter, p.metric);
        }
    }
    println!(
        "\nsecurity metrics concentrate their change (step scores {:.2}, {:.2}, {:.2});",
        sat.step_score(),
        ccr.step_score(),
        puf_sweep.step_score()
    );
    println!("the PPA area curve does not ({:.2}).", area.step_score());
}
