//! Regenerates the paper's Table I and Table II with measured evidence.
//!
//! ```sh
//! cargo run -p seceda-bench --release --bin tables
//! ```

fn main() {
    println!("{}", seceda_core::table1());
    println!();
    println!("{}", seceda_core::table2());
}
