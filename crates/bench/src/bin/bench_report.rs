//! `bench_report` — perf-regression gate over `BENCH_*.json` runs.
//!
//! Compares the fresh bench result files in `target/` (written by
//! `cargo bench --bench {fault_sim,sat_attack,parse}`) against the
//! committed `BENCH_baseline.json`, prints a per-case delta table on
//! each bench's primary wall-time metric, and flags regressions beyond
//! the noise tolerance.
//!
//! ```sh
//! bench_report                      # delta table; advisory (exit 0)
//! SECEDA_BENCH_STRICT=1 bench_report # exit 1 on any regression
//! SECEDA_BENCH_TOL=0.4 bench_report  # widen tolerance to 40%
//! bench_report --update-baseline     # fold fresh runs into the baseline
//! bench_report --baseline other.json # compare against another baseline
//! ```
//!
//! Timings are machine-dependent: the committed baseline reflects one
//! reference machine, so the default mode only *warns* (this is what
//! `scripts/verify.sh` runs). Strict mode is for same-machine A/B
//! comparisons — a dedicated perf runner, or a developer re-running
//! after an optimization.

use seceda_bench::report::{
    compare, gate_exit_code, has_regression, merge_baseline, parse_baseline, render_baseline,
    render_table,
};
use seceda_bench::schema::validate_bench_text;
use seceda_testkit::bench::target_dir;
use seceda_testkit::json::Json;
use std::path::PathBuf;
use std::process::ExitCode;

const BENCH_FILES: [&str; 4] = [
    "BENCH_fault_sim.json",
    "BENCH_sat_attack.json",
    "BENCH_parse.json",
    "BENCH_compose.json",
];

fn default_baseline_path() -> PathBuf {
    PathBuf::from(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_baseline.json"
    ))
}

fn load_fresh() -> Result<Vec<Json>, String> {
    let dir = target_dir();
    let mut docs = Vec::new();
    for name in BENCH_FILES {
        let path = dir.join(name);
        let Ok(text) = std::fs::read_to_string(&path) else {
            continue; // that bench hasn't been run; compare what exists
        };
        validate_bench_text(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        docs.push(Json::parse(&text).expect("validated text parses"));
    }
    if docs.is_empty() {
        return Err(format!(
            "no BENCH_*.json found in {} — run `SECEDA_BENCH_QUICK=1 cargo bench` first",
            dir.display()
        ));
    }
    Ok(docs)
}

fn run() -> Result<u8, String> {
    let mut baseline_path = default_baseline_path();
    let mut update = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--update-baseline" => update = true,
            "--baseline" => {
                baseline_path = PathBuf::from(args.next().ok_or("--baseline needs a path")?);
            }
            "-h" | "--help" => {
                println!(
                    "usage: bench_report [--baseline <file>] [--update-baseline]\n\
                     env: SECEDA_BENCH_TOL (default 0.25), SECEDA_BENCH_STRICT=1"
                );
                return Ok(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }

    let fresh = load_fresh()?;
    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => {
            parse_baseline(&text).map_err(|e| format!("{}: {e}", baseline_path.display()))?
        }
        Err(_) => Vec::new(), // no baseline yet: every row reports as new
    };

    if update {
        let merged = merge_baseline(&baseline, &fresh);
        std::fs::write(&baseline_path, render_baseline(&merged))
            .map_err(|e| format!("{}: {e}", baseline_path.display()))?;
        println!(
            "updated {} ({} bench document(s))",
            baseline_path.display(),
            merged.len()
        );
        return Ok(0);
    }

    let tolerance: f64 = std::env::var("SECEDA_BENCH_TOL")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|t: &f64| t.is_finite() && *t >= 0.0)
        .unwrap_or(0.25);
    let strict = std::env::var("SECEDA_BENCH_STRICT").is_ok_and(|v| v != "0");

    let rows = compare(&fresh, &baseline);
    print!("{}", render_table(&rows, tolerance));
    if has_regression(&rows, tolerance) {
        eprintln!(
            "bench_report: regression(s) beyond {:.0}% tolerance{}",
            tolerance * 100.0,
            if strict {
                ""
            } else {
                " (advisory — set SECEDA_BENCH_STRICT=1 to gate)"
            }
        );
    } else {
        println!(
            "bench_report: no regression beyond {:.0}% tolerance ({} comparison(s))",
            tolerance * 100.0,
            rows.len()
        );
    }
    Ok(gate_exit_code(&rows, tolerance, strict))
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => ExitCode::from(code),
        Err(e) => {
            eprintln!("bench_report: {e}");
            ExitCode::from(2)
        }
    }
}
