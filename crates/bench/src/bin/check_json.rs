//! Schema-aware validation of `BENCH_*.json` report files.
//!
//! Used by `scripts/verify.sh` to check bench reports (e.g.
//! `target/BENCH_fault_sim.json`) without external tooling (`jq`,
//! `python`). Beyond JSON well-formedness, each document is validated
//! against its bench's schema (see `seceda_bench::schema`): `bench`,
//! `quick`, and a non-empty `results` array whose rows carry exactly
//! the required fields with the right types — a missing or unknown
//! field fails with its JSON path, e.g. `results[2].packed_ns: missing`.
//!
//! Files whose name doesn't match `BENCH_*.json` (or with
//! `--syntax-only`) are checked for JSON syntax only.

use seceda_bench::schema::validate_bench_text;
use seceda_testkit::json::Json;

fn is_bench_report(path: &str) -> bool {
    std::path::Path::new(path)
        .file_name()
        .and_then(|n| n.to_str())
        // the baseline is an *array* of bench documents, not one report
        .is_some_and(|n| {
            n.starts_with("BENCH_") && n.ends_with(".json") && n != "BENCH_baseline.json"
        })
}

fn main() {
    let mut status = 0;
    let mut syntax_only = false;
    let mut paths: Vec<String> = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--syntax-only" => syntax_only = true,
            _ => paths.push(arg),
        }
    }
    if paths.is_empty() {
        eprintln!("usage: check_json [--syntax-only] <file>...");
        std::process::exit(2);
    }
    for path in paths {
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("{path}: {e}");
                status = 1;
                continue;
            }
        };
        if !syntax_only && is_bench_report(&path) {
            match validate_bench_text(&text) {
                Ok(bench) => println!("{path}: valid `{bench}` bench report"),
                Err(e) => {
                    eprintln!("{path}: {e}");
                    status = 1;
                }
            }
        } else {
            match Json::parse(&text) {
                Ok(_) => println!("{path}: valid JSON"),
                Err(e) => {
                    eprintln!("{path}: invalid JSON: {e}");
                    status = 1;
                }
            }
        }
    }
    std::process::exit(status);
}
