//! Validates that a file parses as JSON.
//!
//! Used by `scripts/verify.sh` to check the bench report files (e.g.
//! `target/BENCH_fault_sim.json`) are well-formed without any external
//! tooling (`jq`, `python`): the parser is the workspace's own
//! `seceda_testkit::json`.

use seceda_testkit::json::Json;

fn main() {
    let mut status = 0;
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: check_json <file>...");
        std::process::exit(2);
    }
    for path in paths {
        match std::fs::read_to_string(&path) {
            Ok(text) => match Json::parse(&text) {
                Ok(_) => println!("{path}: valid JSON"),
                Err(e) => {
                    eprintln!("{path}: invalid JSON: {e}");
                    status = 1;
                }
            },
            Err(e) => {
                eprintln!("{path}: {e}");
                status = 1;
            }
        }
    }
    std::process::exit(status);
}
