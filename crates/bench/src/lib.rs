//! # seceda-bench
//!
//! The experiment harness: one Criterion bench per table/figure of the
//! paper (each prints its measured artifact before timing the kernels)
//! and two binaries that regenerate all artifacts in one go:
//!
//! * `cargo run -p seceda-bench --release --bin tables` — Table I and
//!   Table II with measured evidence in every cell;
//! * `cargo run -p seceda-bench --release --bin sweeps` — the Fig. 2
//!   experiment plus the step-function metric sweeps of Sec. IV.
//!
//! Benches: `fig1_flow`, `fig2_private_circuit`, `table1_threats`,
//! `table2_matrix`, `composition_crosseffect`, `step_metrics`.

/// Builds the masked AND gadget shared by several experiments.
pub fn masked_and_gadget() -> (seceda_sca::MaskedNetlist, seceda_sca::ProbingModel) {
    use seceda_netlist::{CellKind, Netlist};
    let mut nl = Netlist::new("and");
    let a = nl.add_input("a");
    let b = nl.add_input("b");
    let y = nl.add_gate(CellKind::And, &[a, b]);
    nl.mark_output(y, "y");
    let masked = seceda_sca::mask_netlist(&nl);
    let model = seceda_sca::ProbingModel::of(&masked);
    (masked, model)
}
