//! # seceda-bench
//!
//! The experiment harness: one Criterion bench per table/figure of the
//! paper (each prints its measured artifact before timing the kernels)
//! and two binaries that regenerate all artifacts in one go:
//!
//! * `cargo run -p seceda-bench --release --bin tables` — Table I and
//!   Table II with measured evidence in every cell;
//! * `cargo run -p seceda-bench --release --bin sweeps` — the Fig. 2
//!   experiment plus the step-function metric sweeps of Sec. IV.
//!
//! Benches: `fig1_flow`, `fig2_private_circuit`, `table1_threats`,
//! `table2_matrix`, `composition_crosseffect`, `step_metrics`.

pub mod report;
pub mod schema;

use seceda_core::FlowReport;
use seceda_netlist::{Netlist, NetlistError};
use seceda_testkit::json::Json;
use seceda_trace::{session, AttrValue, Event, Summary};

/// Runs both flows over `nl` inside an isolated trace session and
/// returns the reports together with the recorded telemetry events.
///
/// # Errors
///
/// Propagates simulator errors from either flow.
pub fn traced_flows(nl: &Netlist) -> Result<(FlowReport, FlowReport, Vec<Event>), NetlistError> {
    let (reports, events) = session(|| {
        let classical = seceda_core::run_classical_flow(nl)?;
        let secure = seceda_core::run_secure_flow(nl)?;
        Ok::<_, NetlistError>((classical, secure))
    });
    let (classical, secure) = reports?;
    Ok((classical, secure, events))
}

/// Per-stage wall-time breakdown of a traced flow run: one JSON object
/// per `flow.stage` span, carrying its flow, stage name, total/self
/// nanoseconds, and gate count — the shape the benchmark snapshots embed.
pub fn stage_breakdown(events: &[Event]) -> Json {
    let summary = Summary::of(events);
    let mut rows = Vec::new();
    for flow in summary
        .spans
        .iter()
        .filter(|s| s.name.starts_with("flow.") && s.name != "flow.stage")
    {
        for stage in summary
            .spans
            .iter()
            .filter(|s| s.parent == Some(flow.id) && s.name == "flow.stage")
        {
            let stage_name = match stage.attr("stage") {
                Some(AttrValue::Str(s)) => s.clone(),
                _ => stage.name.clone(),
            };
            let gates = match stage.attr("gates") {
                Some(AttrValue::Int(g)) => *g,
                _ => 0,
            };
            rows.push(
                Json::obj()
                    .field("flow", flow.name.as_str())
                    .field("stage", stage_name.as_str())
                    .field("total_ns", stage.duration_ns() as i64)
                    .field("self_ns", summary.self_time_ns(stage) as i64)
                    .field("gates", gates)
                    .build(),
            );
        }
    }
    Json::Arr(rows)
}

/// Builds the masked AND gadget shared by several experiments.
pub fn masked_and_gadget() -> (seceda_sca::MaskedNetlist, seceda_sca::ProbingModel) {
    use seceda_netlist::{CellKind, Netlist};
    let mut nl = Netlist::new("and");
    let a = nl.add_input("a");
    let b = nl.add_input("b");
    let y = nl.add_gate(CellKind::And, &[a, b]);
    nl.mark_output(y, "y");
    let masked = seceda_sca::mask_netlist(&nl);
    let model = seceda_sca::ProbingModel::of(&masked);
    (masked, model)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_has_one_row_per_stage_of_each_flow() {
        let nl = seceda_netlist::c17();
        let (classical, secure, events) = traced_flows(&nl).expect("flows");
        match stage_breakdown(&events) {
            Json::Arr(rows) => {
                assert_eq!(rows.len(), classical.stages.len() + secure.stages.len());
                for row in &rows {
                    assert!(row.get("stage").is_some());
                    assert!(row.get("total_ns").is_some());
                }
            }
            other => panic!("breakdown must be an array, got {other:?}"),
        }
    }
}
