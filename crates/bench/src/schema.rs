//! Schema validation for the `BENCH_*.json` report files.
//!
//! Every bench binary writes a document of the shape
//!
//! ```json
//! {"bench": "<name>", "quick": true|false, "results": [ {...}, ... ]}
//! ```
//!
//! where the per-result fields depend on the bench. [`validate_bench`]
//! checks a parsed document against the known schema for its `bench`
//! name: required fields must be present with the right type, `results`
//! must be non-empty, and *unknown* fields are rejected — a typo'd or
//! drifted field name fails loudly with its JSON path (e.g.
//! `results[2].packed_ns: missing`) instead of silently producing
//! baseline tables with holes.

use seceda_testkit::json::Json;

/// Field type expected by a schema slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FieldKind {
    /// JSON string.
    Str,
    /// JSON integer (`Json::Int`).
    Int,
    /// Any JSON number (`Json::Int` or `Json::Num`).
    Num,
    /// JSON boolean.
    Bool,
}

impl FieldKind {
    fn matches(self, v: &Json) -> bool {
        match self {
            FieldKind::Str => matches!(v, Json::Str(_)),
            FieldKind::Int => matches!(v, Json::Int(_)),
            FieldKind::Num => matches!(v, Json::Int(_) | Json::Num(_)),
            FieldKind::Bool => matches!(v, Json::Bool(_)),
        }
    }

    fn name(self) -> &'static str {
        match self {
            FieldKind::Str => "string",
            FieldKind::Int => "integer",
            FieldKind::Num => "number",
            FieldKind::Bool => "boolean",
        }
    }
}

/// Per-result schema of one bench document: `(field, kind)` pairs, all
/// required, nothing else allowed.
pub fn result_schema(bench: &str) -> Option<&'static [(&'static str, FieldKind)]> {
    use FieldKind::{Bool, Int, Num, Str};
    match bench {
        "fault_sim" => Some(&[
            ("circuit", Str),
            ("gates", Int),
            ("faults", Int),
            ("patterns", Int),
            ("lane_bits", Int),
            ("scalar_ns", Int),
            ("packed_ns", Int),
            ("speedup", Num),
            ("match", Bool),
            ("coverage", Num),
        ]),
        "sat_attack" => Some(&[
            ("case", Str),
            ("key_width", Int),
            ("dip_iterations", Int),
            ("aig_clauses", Int),
            ("portfolio_k", Int),
            ("rebuild_ns", Int),
            ("incremental_ns", Int),
            ("speedup", Num),
            ("iterations_match", Bool),
            ("keys_correct", Bool),
            ("indeterminate", Bool),
            ("budget_conflicts", Int),
        ]),
        "parse" => Some(&[
            ("case", Str),
            ("gates", Int),
            ("bytes", Int),
            ("parse_ns", Int),
            ("topo_ns", Int),
            ("gates_per_sec", Num),
            ("roundtrip_exact", Bool),
        ]),
        "compose" => Some(&[
            ("case", Str),
            ("gates", Int),
            ("sessions", Int),
            ("countermeasures", Int),
            ("evaluations", Int),
            ("full_ns", Int),
            ("incremental_ns", Int),
            ("speedup", Num),
            ("cache_hit_rate", Num),
            ("reports_match", Bool),
        ]),
        _ => None,
    }
}

/// The key field naming a result row (`circuit` or `case`).
pub fn case_key(bench: &str) -> &'static str {
    match bench {
        "fault_sim" => "circuit",
        _ => "case",
    }
}

fn check_object<'a>(
    value: &'a Json,
    path: &str,
    schema: &[(&str, FieldKind)],
) -> Result<&'a [(String, Json)], String> {
    let Json::Obj(fields) = value else {
        return Err(format!("{path}: expected an object"));
    };
    for (name, kind) in schema {
        match fields.iter().find(|(k, _)| k == name) {
            None => return Err(format!("{path}.{name}: missing")),
            Some((_, v)) if !kind.matches(v) => {
                return Err(format!("{path}.{name}: expected {}", kind.name()));
            }
            Some(_) => {}
        }
    }
    for (k, _) in fields {
        if !schema.iter().any(|(name, _)| name == k) {
            return Err(format!("{path}.{k}: unknown field"));
        }
    }
    Ok(fields)
}

/// Validates one parsed `BENCH_*.json` document; returns its bench name.
///
/// # Errors
///
/// A human-readable message naming the offending JSON path, e.g.
/// `results[2].packed_ns: missing` or `results[0].speed: unknown field`.
pub fn validate_bench(doc: &Json) -> Result<String, String> {
    let Json::Obj(fields) = doc else {
        return Err("$: expected a top-level object".into());
    };
    let bench = match doc.get("bench") {
        Some(Json::Str(b)) => b.clone(),
        Some(_) => return Err("$.bench: expected string".into()),
        None => return Err("$.bench: missing".into()),
    };
    let schema = result_schema(&bench)
        .ok_or_else(|| format!("$.bench: unknown bench `{bench}` (no schema)"))?;
    match doc.get("quick") {
        Some(Json::Bool(_)) => {}
        Some(_) => return Err("$.quick: expected boolean".into()),
        None => return Err("$.quick: missing".into()),
    }
    let results = match doc.get("results") {
        Some(Json::Arr(r)) => r,
        Some(_) => return Err("$.results: expected array".into()),
        None => return Err("$.results: missing".into()),
    };
    if results.is_empty() {
        return Err("$.results: must be non-empty".into());
    }
    for (k, _) in fields {
        if !matches!(k.as_str(), "bench" | "quick" | "results") {
            return Err(format!("$.{k}: unknown field"));
        }
    }
    for (i, row) in results.iter().enumerate() {
        check_object(row, &format!("results[{i}]"), schema)?;
    }
    Ok(bench)
}

/// Parses and validates a `BENCH_*.json` file's text. Returns the bench
/// name on success.
///
/// # Errors
///
/// JSON syntax errors and schema violations, both as readable strings.
pub fn validate_bench_text(text: &str) -> Result<String, String> {
    let doc = Json::parse(text).map_err(|e| format!("invalid JSON: {e}"))?;
    validate_bench(&doc)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fault_sim_doc() -> String {
        r#"{"bench":"fault_sim","quick":true,"results":[
            {"circuit":"ripple_adder_4","gates":21,"faults":58,"patterns":16,
             "lane_bits":256,"scalar_ns":1000,"packed_ns":100,"speedup":10.0,
             "match":true,"coverage":0.97}]}"#
            .into()
    }

    #[test]
    fn valid_documents_pass_and_name_their_bench() {
        assert_eq!(validate_bench_text(&fault_sim_doc()).unwrap(), "fault_sim");
        let sat = r#"{"bench":"sat_attack","quick":false,"results":[
            {"case":"c17_xor4","key_width":4,"dip_iterations":2,
             "aig_clauses":120,"portfolio_k":4,
             "rebuild_ns":500,"incremental_ns":200,"speedup":2.5,
             "iterations_match":true,"keys_correct":true,
             "indeterminate":true,"budget_conflicts":17}]}"#;
        assert_eq!(validate_bench_text(sat).unwrap(), "sat_attack");
        let parse = r#"{"bench":"parse","quick":true,"results":[
            {"case":"parse_1k","gates":1000,"bytes":25000,"parse_ns":900,
             "topo_ns":50,"gates_per_sec":1.1e6,"roundtrip_exact":true}]}"#;
        assert_eq!(validate_bench_text(parse).unwrap(), "parse");
    }

    #[test]
    fn missing_field_fails_with_its_path() {
        let doc = fault_sim_doc().replace(r#""packed_ns":100,"#, "");
        let err = validate_bench_text(&doc).unwrap_err();
        assert_eq!(err, "results[0].packed_ns: missing");
    }

    #[test]
    fn unknown_field_fails_with_its_path() {
        let doc = fault_sim_doc().replace(r#""coverage":0.97"#, r#""coverage":0.97,"bogus":1"#);
        let err = validate_bench_text(&doc).unwrap_err();
        assert_eq!(err, "results[0].bogus: unknown field");
        let doc = fault_sim_doc().replace(r#""quick":true,"#, r#""quick":true,"extra":{},"#);
        assert_eq!(
            validate_bench_text(&doc).unwrap_err(),
            "$.extra: unknown field"
        );
    }

    #[test]
    fn wrong_types_and_structure_fail() {
        let doc = fault_sim_doc().replace(r#""gates":21"#, r#""gates":"21""#);
        assert_eq!(
            validate_bench_text(&doc).unwrap_err(),
            "results[0].gates: expected integer"
        );
        assert_eq!(
            validate_bench_text(r#"{"bench":"fault_sim","quick":true,"results":[]}"#).unwrap_err(),
            "$.results: must be non-empty"
        );
        assert_eq!(
            validate_bench_text(r#"{"bench":"mystery","quick":true,"results":[{}]}"#).unwrap_err(),
            "$.bench: unknown bench `mystery` (no schema)"
        );
        assert_eq!(
            validate_bench_text("[1,2]").unwrap_err(),
            "$: expected a top-level object"
        );
        assert!(validate_bench_text("{nope")
            .unwrap_err()
            .starts_with("invalid JSON"));
    }

    #[test]
    fn committed_report_documents_validate() {
        // the full-mode result docs committed at the repo root must
        // always satisfy their own schema
        for name in [
            "BENCH_fault_sim.json",
            "BENCH_sat_attack.json",
            "BENCH_parse.json",
            "BENCH_compose.json",
        ] {
            let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
                .join("../..")
                .join(name);
            let text = std::fs::read_to_string(&path).expect("committed bench doc readable");
            validate_bench_text(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }
}
