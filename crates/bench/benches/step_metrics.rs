//! Sec. IV regeneration: security metrics behave like step functions of
//! design effort, unlike smooth PPA metrics.
//!
//! Three security sweeps (SAT-attack effort vs. key width, proximity
//! attack vs. split layer, PUF modeling accuracy vs. CRP count) are
//! contrasted with a PPA sweep (area vs. key width); the step score
//! quantifies the difference.

use seceda_core::{explore, step_score};
use seceda_layout::{place, proximity_attack, route, split_at, PlacementConfig, RouteConfig};
use seceda_lock::{sat_attack, sfll_hd0, xor_lock};
use seceda_netlist::{c17, random_circuit, NetlistStats, RandomCircuitConfig};
use seceda_puf::{collect_crps, model_arbiter_puf, ArbiterPuf, ArbiterPufConfig};
use seceda_testkit::bench::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn sat_effort_sweep() -> seceda_core::DseSweep {
    let nl = c17();
    explore(
        "SAT-attack oracle queries vs locking scheme strength",
        &[2.0, 4.0, 8.0, 16.0, 24.0, 32.0],
        |bits| {
            let locked = if bits < 32.0 {
                xor_lock(&nl, bits as usize, 5)
            } else {
                // the "step": switching schemes (SFLL) at the top end
                sfll_hd0(&nl, &[true, false, true, true, false])
            };
            sat_attack(&locked, |x| nl.evaluate(x))
                .expect("attack")
                .expect("key")
                .iterations as f64
        },
    )
}

fn split_sweep() -> (seceda_core::DseSweep, seceda_core::DseSweep) {
    let host = random_circuit(&RandomCircuitConfig {
        num_gates: 120,
        num_inputs: 10,
        num_outputs: 6,
        ..RandomCircuitConfig::default()
    });
    let placement = place(&host, &PlacementConfig::default());
    let routed = route(&host, &placement, &RouteConfig::default());
    let ccr = explore(
        "proximity-attack CCR vs split layer",
        &[2.0, 3.0, 4.0, 5.0, 6.0],
        |layer| proximity_attack(&host, &split_at(&routed, layer as u8)).ccr,
    );
    let wires = explore(
        "hidden-wire count vs split layer (smooth, for contrast)",
        &[2.0, 3.0, 4.0, 5.0, 6.0],
        |layer| split_at(&routed, layer as u8).hidden.len() as f64,
    );
    (ccr, wires)
}

fn puf_sweep() -> seceda_core::DseSweep {
    let config = ArbiterPufConfig {
        noise_sigma: 0.0,
        ..ArbiterPufConfig::default()
    };
    let puf = ArbiterPuf::manufacture(&config, 99);
    let test = collect_crps(|c| puf.respond_ideal(c), 32, 400, 1);
    explore(
        "PUF modeling accuracy vs training CRPs",
        &[10.0, 30.0, 100.0, 300.0, 1000.0, 3000.0],
        |n| {
            let train = collect_crps(|c| puf.respond_ideal(c), 32, n as usize, 2);
            model_arbiter_puf(&train, &test, 25, 0.1).accuracy
        },
    )
}

fn area_sweep() -> seceda_core::DseSweep {
    let nl = c17();
    explore(
        "area vs key width (classical smooth metric)",
        &[2.0, 4.0, 8.0, 16.0, 24.0, 32.0],
        |bits| NetlistStats::of(&xor_lock(&nl, bits as usize, 5).netlist).area_ge,
    )
}

fn print_artifact() {
    println!("\n=== Sec. IV: step-function security metrics vs smooth PPA ===");
    let sat = sat_effort_sweep();
    let (ccr, wires) = split_sweep();
    let puf = puf_sweep();
    let area = area_sweep();
    for sweep in [&sat, &ccr, &wires, &puf, &area] {
        println!("\n{} (step score {:.2}):", sweep.name, sweep.step_score());
        for p in &sweep.points {
            println!("  param {:>8.0} -> {:>10.3}", p.parameter, p.metric);
        }
    }
    println!(
        "\nsecurity metrics step scores: SAT {:.2}, PUF {:.2} | PPA area: {:.2}",
        sat.step_score(),
        puf.step_score(),
        area.step_score()
    );
    let _ = step_score(&[]);
    println!();
}

fn bench(c: &mut Criterion) {
    print_artifact();
    c.bench_function("step/sat_attack_point_8bit", |b| {
        let nl = c17();
        let locked = xor_lock(&nl, 8, 5);
        b.iter(|| {
            black_box(
                sat_attack(&locked, |x| nl.evaluate(x))
                    .expect("attack")
                    .expect("key"),
            )
        })
    });
    c.bench_function("step/puf_model_1000_crps", |b| {
        let config = ArbiterPufConfig {
            noise_sigma: 0.0,
            ..ArbiterPufConfig::default()
        };
        let puf = ArbiterPuf::manufacture(&config, 99);
        let train = collect_crps(|c| puf.respond_ideal(c), 32, 1000, 2);
        let test = collect_crps(|c| puf.respond_ideal(c), 32, 200, 3);
        b.iter(|| black_box(model_arbiter_puf(&train, &test, 25, 0.1)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
