//! Sec. IV regeneration: the composition cross-effect of \[61\] — masking
//! then parity-based fault detection, with the engine catching the
//! conflict, versus masking then share-wise duplication.

use seceda_core::{CompositionEngine, Countermeasure, DesignUnderTest, SecurityEvaluation};
use seceda_netlist::{CellKind, Netlist};
use seceda_testkit::bench::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn and_gadget() -> Netlist {
    let mut nl = Netlist::new("and");
    let a = nl.add_input("a");
    let b = nl.add_input("b");
    let y = nl.add_gate(CellKind::And, &[a, b]);
    nl.mark_output(y, "y");
    nl
}

fn run_sequence(second: Countermeasure) -> (bool, Vec<String>) {
    let mut engine = CompositionEngine::new(
        DesignUnderTest::new(and_gadget()),
        SecurityEvaluation::default(),
    );
    engine.evaluate("baseline").expect("eval");
    engine.apply(Countermeasure::Masking).expect("mask");
    let outcome = engine.apply(second).expect("second countermeasure");
    (outcome.report.all_pass(), outcome.regressions)
}

fn print_artifact() {
    println!("\n=== Sec. IV: composition cross-effect (the [61] interaction) ===");
    println!("| sequence | all metrics pass | regressions flagged |");
    println!("|---|---|---|");
    for (label, cm) in [
        ("masking → parity check", Countermeasure::ParityCheck),
        (
            "masking → duplication+compare",
            Countermeasure::DuplicationCompare,
        ),
    ] {
        let (_pass, regressions) = run_sequence(cm);
        // piracy/trojan metrics are orthogonal here; report SCA+FIA verdicts
        println!(
            "| {label} | SCA+FIA consistent: {} | {:?} |",
            regressions.is_empty(),
            regressions
        );
    }
    println!();
}

fn bench(c: &mut Criterion) {
    print_artifact();
    c.bench_function("composition/masking_plus_parity_full_reeval", |b| {
        b.iter(|| black_box(run_sequence(Countermeasure::ParityCheck)))
    });
    c.bench_function("composition/masking_plus_dwc_full_reeval", |b| {
        b.iter(|| black_box(run_sequence(Countermeasure::DuplicationCompare)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
