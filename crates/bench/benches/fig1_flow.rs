//! Fig. 1 regeneration: the classical EDA flow pipeline, stage by stage,
//! on the toy-cipher datapath — and its security-centric counterpart.

use seceda_cipher::ToyCipher;
use seceda_core::{run_classical_flow, run_secure_flow};
use seceda_testkit::bench::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn print_artifact() {
    let nl = ToyCipher::netlist();
    let classical = run_classical_flow(&nl).expect("flow");
    println!("\n=== Fig. 1: classical EDA flow on the toy-cipher datapath ===");
    println!("| stage | gates | area (GE) | delay | security work |");
    println!("|---|---|---|---|---|");
    for s in &classical.stages {
        println!(
            "| {} | {} | {:.0} | {:.1} | {} |",
            s.stage,
            s.gates,
            s.area_ge,
            s.delay,
            s.security_notes.join("; ")
        );
    }
    let masked = seceda_bench::masked_and_gadget().0;
    let secure = run_secure_flow(&masked.netlist).expect("flow");
    println!("\n=== security-centric flow on the masked gadget ===");
    println!("| stage | gates | area (GE) | delay | security work |");
    println!("|---|---|---|---|---|");
    for s in &secure.stages {
        println!(
            "| {} | {} | {:.0} | {:.1} | {} |",
            s.stage,
            s.gates,
            s.area_ge,
            s.delay,
            s.security_notes.join("; ")
        );
    }
    println!(
        "secure-flow equivalence checked: {}\n",
        secure.equivalence_checked
    );
}

fn bench(c: &mut Criterion) {
    print_artifact();
    let masked = seceda_bench::masked_and_gadget().0;
    c.bench_function("fig1/classical_flow_masked_gadget", |b| {
        b.iter(|| black_box(run_classical_flow(black_box(&masked.netlist)).expect("flow")))
    });
    c.bench_function("fig1/secure_flow_masked_gadget", |b| {
        b.iter(|| black_box(run_secure_flow(black_box(&masked.netlist)).expect("flow")))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
