//! Frontend throughput benchmark: `.bench` parse and topological sort
//! at scale.
//!
//! Each case exports a generated circuit with [`write_bench`], then
//! times (a) parsing the text back and (b) topologically sorting the
//! parsed netlist, verifying the reparse is structurally identical to
//! the original before reporting gates/second.
//!
//! Results go to stdout as a table and to `target/BENCH_parse.json`
//! (one JSON document, validated by the `check_json` bin in CI). The
//! acceptance bar for the frontend is the `parse_100k` case: parse +
//! topo sort of a 10^5-gate design must finish well under 2 s.
//!
//! `SECEDA_BENCH_QUICK=1` switches to a small smoke configuration used
//! by `scripts/verify.sh`.

use seceda_netlist::{parse_bench, random_circuit, write_bench, RandomCircuitConfig};
use seceda_testkit::bench::target_dir;
use seceda_testkit::json::Json;
use std::time::Instant;

struct CaseResult {
    name: String,
    gates: usize,
    bytes: usize,
    parse_ns: u128,
    topo_ns: u128,
    gates_per_sec: f64,
    roundtrip_exact: bool,
}

/// Median wall-clock time of `samples` runs of `f`; returns the median
/// and the result of the last run.
fn time_median<R>(samples: usize, mut f: impl FnMut() -> R) -> (u128, R) {
    let mut times = Vec::with_capacity(samples);
    let mut last = None;
    for _ in 0..samples {
        let start = Instant::now();
        last = Some(std::hint::black_box(f()));
        times.push(start.elapsed().as_nanos());
    }
    times.sort_unstable();
    (times[times.len() / 2], last.expect("at least one sample"))
}

fn run_case(name: &str, num_gates: usize, samples: usize) -> CaseResult {
    let original = random_circuit(&RandomCircuitConfig {
        num_inputs: 64.min(num_gates),
        num_gates,
        num_outputs: 32.min(num_gates),
        with_xor: true,
        seed: 0xBE7C,
    });
    let text = write_bench(&original);
    let (parse_ns, parsed) = time_median(samples, || parse_bench(&text).expect("parse"));
    let (topo_ns, order) = time_median(samples, || parsed.topo_order().expect("acyclic"));
    assert_eq!(order.len(), num_gates, "{name}: topo covers all gates");
    CaseResult {
        name: name.to_string(),
        gates: num_gates,
        bytes: text.len(),
        parse_ns,
        topo_ns,
        gates_per_sec: num_gates as f64 / (parse_ns as f64 / 1e9),
        roundtrip_exact: parsed == original,
    }
}

fn main() {
    // cargo passes harness flags (--bench, filters) we don't interpret
    let quick = std::env::var("SECEDA_BENCH_QUICK").is_ok_and(|v| v != "0");
    let results: Vec<CaseResult> = if quick {
        vec![
            run_case("parse_1k", 1_000, 1),
            run_case("parse_5k", 5_000, 1),
        ]
    } else {
        vec![
            run_case("parse_10k", 10_000, 5),
            run_case("parse_100k", 100_000, 3),
        ]
    };

    println!(
        "{:<12} {:>8} {:>10} {:>13} {:>12} {:>14} {:>6}",
        "case", "gates", "bytes", "parse_ns", "topo_ns", "gates_per_sec", "exact"
    );
    for r in &results {
        println!(
            "{:<12} {:>8} {:>10} {:>13} {:>12} {:>14.0} {:>6}",
            r.name, r.gates, r.bytes, r.parse_ns, r.topo_ns, r.gates_per_sec, r.roundtrip_exact
        );
        assert!(
            r.roundtrip_exact,
            "{}: reparsed netlist diverged from the original",
            r.name
        );
        // the frontend acceptance bar: parse + topo < 2 s at any scale
        // this harness runs
        assert!(
            r.parse_ns + r.topo_ns < 2_000_000_000,
            "{}: parse+topo exceeded 2 s",
            r.name
        );
    }

    let entries: Vec<Json> = results
        .iter()
        .map(|r| {
            Json::obj()
                .field("case", r.name.as_str())
                .field("gates", r.gates)
                .field("bytes", r.bytes)
                .field("parse_ns", r.parse_ns as i64)
                .field("topo_ns", r.topo_ns as i64)
                .field("gates_per_sec", r.gates_per_sec)
                .field("roundtrip_exact", r.roundtrip_exact)
                .build()
        })
        .collect();
    let doc = Json::obj()
        .field("bench", "parse")
        .field("quick", quick)
        .field("results", entries)
        .build();
    let path = target_dir().join("BENCH_parse.json");
    std::fs::write(&path, format!("{}\n", doc.render())).expect("write BENCH_parse.json");
    println!("wrote {}", path.display());
}
