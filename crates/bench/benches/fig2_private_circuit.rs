//! Fig. 2 regeneration: the private-circuit AND gadget before and after
//! security-unaware synthesis, judged by exact probing and by TVLA.
//!
//! Prints the measured artifact once, then times the experiment kernels.

use seceda_bench::masked_and_gadget;
use seceda_sca::{
    acquire_fixed_vs_random, first_order_leaks, tvla, MaskedNetlist, TraceCampaign, TVLA_THRESHOLD,
};
use seceda_synth::{reassociate, SynthesisMode};
use seceda_testkit::bench::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn print_artifact() {
    let (masked, model) = masked_and_gadget();
    let (aware, _) = reassociate(&masked.netlist, SynthesisMode::SecurityAware);
    let (classical, report) = reassociate(&masked.netlist, SynthesisMode::Classical);
    let campaign = TraceCampaign {
        traces_per_group: 2000,
        ..TraceCampaign::default()
    };
    let secure_groups = acquire_fixed_vs_random(&masked, &[true, true], &campaign).expect("traces");
    let t_secure = tvla(&secure_groups.fixed, &secure_groups.random).max_abs_t;
    let broken = MaskedNetlist {
        netlist: classical.clone(),
        ..masked.clone()
    };
    let broken_groups = acquire_fixed_vs_random(&broken, &[true, true], &campaign).expect("traces");
    let t_broken = tvla(&broken_groups.fixed, &broken_groups.random).max_abs_t;

    println!("\n=== Fig. 2: private circuit vs security-unaware synthesis ===");
    println!("| variant | probing leaks | TVLA max|t| (thr {TVLA_THRESHOLD}) | verdict |");
    println!("|---|---|---|---|");
    println!(
        "| gadget as designed | {} | {:.2} | secure |",
        first_order_leaks(&masked.netlist, &model).len(),
        t_secure
    );
    println!(
        "| security-aware synthesis | {} | (unchanged netlist) | secure |",
        first_order_leaks(&aware, &model).len()
    );
    println!(
        "| classical synthesis ({} factorings) | {} | {:.2} | BROKEN |",
        report.factorings,
        first_order_leaks(&classical, &model).len(),
        t_broken
    );
    println!();
}

fn bench(c: &mut Criterion) {
    print_artifact();
    let (masked, model) = masked_and_gadget();
    c.bench_function("fig2/mask_transform", |b| {
        let nl = {
            let mut nl = seceda_netlist::Netlist::new("and");
            let x = nl.add_input("a");
            let y = nl.add_input("b");
            let z = nl.add_gate(seceda_netlist::CellKind::And, &[x, y]);
            nl.mark_output(z, "y");
            nl
        };
        b.iter(|| black_box(seceda_sca::mask_netlist(black_box(&nl))))
    });
    c.bench_function("fig2/classical_reassociation", |b| {
        b.iter(|| {
            black_box(reassociate(
                black_box(&masked.netlist),
                SynthesisMode::Classical,
            ))
        })
    });
    c.bench_function("fig2/exact_probing_check", |b| {
        b.iter(|| black_box(first_order_leaks(black_box(&masked.netlist), &model)))
    });
    let campaign = TraceCampaign {
        traces_per_group: 200,
        ..TraceCampaign::default()
    };
    c.bench_function("fig2/tvla_200_traces", |b| {
        b.iter(|| {
            let g = acquire_fixed_vs_random(&masked, &[true, true], &campaign).expect("traces");
            black_box(tvla(&g.fixed, &g.random))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
