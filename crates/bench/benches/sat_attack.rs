//! Rebuild-per-iteration vs. incremental SAT-attack benchmark.
//!
//! Runs the oracle-guided SAT attack on XOR-locked hosts with growing
//! key widths through both formulations — the from-scratch baseline
//! ([`sat_attack_rebuild`], full CNF re-encode + fresh solver per DIP
//! iteration) and the persistent-solver attack ([`sat_attack`], one
//! encoding, learned clauses kept across the whole DIP loop) — and
//! verifies that both walk the same number of DIP iterations and that
//! both recovered keys are functionally correct before reporting the
//! speedup.
//!
//! Results go to stdout as a table and to `target/BENCH_sat_attack.json`
//! (one JSON document, validated by the `check_json` bin in CI).
//!
//! `SECEDA_BENCH_QUICK=1` switches to a seconds-not-minutes smoke
//! configuration (narrow keys, one sample) used by `scripts/verify.sh`.

use seceda_lock::{
    sat_attack, sat_attack_budgeted, sat_attack_rebuild, xor_lock, LockedNetlist, SatAttackOutcome,
    SatAttackResult,
};
use seceda_netlist::{c17, random_circuit, Netlist, RandomCircuitConfig};
use seceda_sat::Budget;
use seceda_testkit::bench::target_dir;
use seceda_testkit::json::Json;
use std::time::Instant;

struct CaseResult {
    name: String,
    key_width: usize,
    iterations: usize,
    aig_clauses: usize,
    portfolio_k: usize,
    rebuild_ns: u128,
    incremental_ns: u128,
    speedup: f64,
    iterations_match: bool,
    keys_correct: bool,
    /// Whether the one-conflict budgeted probe suspended (the expected
    /// outcome on any host that needs real search).
    indeterminate: bool,
    /// Conflicts the suspended probe had spent at checkpoint time.
    budget_conflicts: u64,
}

/// Median wall-clock time of `samples` runs of `f`; returns the median
/// and the result of the last run.
fn time_median<R>(samples: usize, mut f: impl FnMut() -> R) -> (u128, R) {
    let mut times = Vec::with_capacity(samples);
    let mut last = None;
    for _ in 0..samples {
        let start = Instant::now();
        last = Some(std::hint::black_box(f()));
        times.push(start.elapsed().as_nanos());
    }
    times.sort_unstable();
    (times[times.len() / 2], last.expect("at least one sample"))
}

fn key_is_correct(locked: &LockedNetlist, original: &Netlist, key: &[bool]) -> bool {
    let n = locked.num_original_inputs;
    (0..(1u32 << n)).all(|pattern| {
        let inputs: Vec<bool> = (0..n).map(|b| (pattern >> b) & 1 == 1).collect();
        locked.evaluate_with_key(&inputs, key) == original.evaluate(&inputs)
    })
}

fn run_case(name: &str, original: &Netlist, key_width: usize, samples: usize) -> CaseResult {
    let locked = xor_lock(original, key_width, 7);
    let oracle = |x: &[bool]| original.evaluate(x);
    let (rebuild_ns, rebuild) = time_median(samples, || {
        sat_attack_rebuild(&locked, oracle)
            .expect("rebuild attack runs")
            .expect("rebuild attack finds a key")
    });
    let (incremental_ns, incremental): (u128, SatAttackResult) = time_median(samples, || {
        sat_attack(&locked, oracle)
            .expect("incremental attack runs")
            .expect("incremental attack finds a key")
    });
    // budgeted probe: a one-conflict budget suspends almost
    // immediately; resuming the checkpoint unbudgeted must land on the
    // exact key and DIP count of the straight-through attack, so the
    // checkpoint/resume machinery is re-verified on every bench host
    let (indeterminate, budget_conflicts) = {
        let starved = Budget::unlimited().with_max_conflicts(1);
        match sat_attack_budgeted(&locked, oracle, &starved, None).expect("budgeted attack runs") {
            SatAttackOutcome::Suspended { checkpoint, .. } => {
                let resumed =
                    sat_attack_budgeted(&locked, oracle, &Budget::unlimited(), Some(&checkpoint))
                        .expect("resume runs");
                match resumed {
                    SatAttackOutcome::Complete(r) => {
                        assert_eq!(r.key, incremental.key, "{name}: resumed key diverged");
                        assert_eq!(
                            r.iterations, incremental.iterations,
                            "{name}: resumed DIP count diverged"
                        );
                    }
                    other => panic!("{name}: unbudgeted resume must complete: {other:?}"),
                }
                (true, checkpoint.conflicts)
            }
            SatAttackOutcome::Complete(_) => (false, 0),
            SatAttackOutcome::NoKey => panic!("{name}: budgeted probe lost the key"),
        }
    };
    CaseResult {
        name: name.to_string(),
        key_width,
        iterations: incremental.iterations,
        aig_clauses: incremental.clauses,
        portfolio_k: incremental.portfolio_k,
        rebuild_ns,
        incremental_ns,
        speedup: rebuild_ns as f64 / incremental_ns.max(1) as f64,
        iterations_match: rebuild.iterations == incremental.iterations,
        keys_correct: key_is_correct(&locked, original, &rebuild.key)
            && key_is_correct(&locked, original, &incremental.key),
        indeterminate,
        budget_conflicts,
    }
}

fn main() {
    // cargo passes harness flags (--bench, filters) we don't interpret
    let quick = std::env::var("SECEDA_BENCH_QUICK").is_ok_and(|v| v != "0");
    // a 12-input host drives the DIP count up (more distinguishable key
    // classes), which is exactly where rebuild-per-iteration pays its
    // quadratic re-encoding bill; c17 keeps a familiar small case
    let big = random_circuit(&RandomCircuitConfig {
        num_inputs: 12,
        num_gates: 300,
        num_outputs: 6,
        with_xor: true,
        seed: 5,
    });
    let results: Vec<CaseResult> = if quick {
        vec![
            run_case("c17_xor4", &c17(), 4, 1),
            run_case("c17_xor12", &c17(), 12, 1),
        ]
    } else {
        vec![
            run_case("c17_xor8", &c17(), 8, 3),
            run_case("rand300_xor16", &big, 16, 3),
            run_case("rand300_xor32", &big, 32, 3),
            run_case("rand300_xor48", &big, 48, 3),
            run_case("rand300_xor64", &big, 64, 3),
        ]
    };

    println!(
        "{:<12} {:>9} {:>10} {:>11} {:>6} {:>14} {:>14} {:>9} {:>11} {:>8} {:>6} {:>11}",
        "case",
        "key_bits",
        "dip_iters",
        "aig_clauses",
        "k",
        "rebuild_ns",
        "incr_ns",
        "speedup",
        "iters_match",
        "keys_ok",
        "indet",
        "bdgt_confl"
    );
    for r in &results {
        println!(
            "{:<12} {:>9} {:>10} {:>11} {:>6} {:>14} {:>14} {:>8.1}x {:>11} {:>8} {:>6} {:>11}",
            r.name,
            r.key_width,
            r.iterations,
            r.aig_clauses,
            r.portfolio_k,
            r.rebuild_ns,
            r.incremental_ns,
            r.speedup,
            r.iterations_match,
            r.keys_correct,
            r.indeterminate,
            r.budget_conflicts
        );
        assert!(
            r.iterations_match,
            "{}: incremental attack diverged from rebuild on DIP count",
            r.name
        );
        assert!(r.keys_correct, "{}: a recovered key is wrong", r.name);
    }

    let entries: Vec<Json> = results
        .iter()
        .map(|r| {
            Json::obj()
                .field("case", r.name.as_str())
                .field("key_width", r.key_width)
                .field("dip_iterations", r.iterations)
                .field("aig_clauses", r.aig_clauses)
                .field("portfolio_k", r.portfolio_k)
                .field("rebuild_ns", r.rebuild_ns as i64)
                .field("incremental_ns", r.incremental_ns as i64)
                .field("speedup", r.speedup)
                .field("iterations_match", r.iterations_match)
                .field("keys_correct", r.keys_correct)
                .field("indeterminate", r.indeterminate)
                .field("budget_conflicts", r.budget_conflicts as i64)
                .build()
        })
        .collect();
    let doc = Json::obj()
        .field("bench", "sat_attack")
        .field("quick", quick)
        .field("results", entries)
        .build();
    let path = target_dir().join("BENCH_sat_attack.json");
    std::fs::write(&path, format!("{}\n", doc.render())).expect("write BENCH_sat_attack.json");
    println!("wrote {}", path.display());
}
