//! Incremental vs. full-recompute security closure benchmark.
//!
//! Drives a portfolio of closure sessions — same design, countermeasure
//! schedules sharing a long prefix, the shape real sign-off campaigns
//! take — through the composition engine twice: once recomputing every
//! threat evaluation from scratch ([`run_closure_full`]) and once over
//! the shared structural-hash-keyed evaluation cache ([`run_closure`]).
//! The final reports must agree metric for metric before the speedup is
//! reported; the cache is only admissible because a hit is bit-identical
//! to a recompute (see `crates/core/tests/incremental_compose.rs`).
//!
//! Both runs are timed under `with_workers(1)`: the cache's in-flight
//! latch already serializes shared-prefix computation across concurrent
//! sessions, so serial timing isolates the algorithmic effect —
//! evaluations avoided — from thread scheduling noise, and makes the
//! comparison deterministic.
//!
//! Results go to stdout as a table and to `target/BENCH_compose.json`
//! (validated by the `check_json` bin in CI). `SECEDA_BENCH_QUICK=1`
//! switches to the smoke configuration used by `scripts/verify.sh`.

use seceda_core::{
    run_closure, run_closure_full, ClosureConfig, ClosureSession, Countermeasure, DesignUnderTest,
    SecurityEvaluation,
};
use seceda_netlist::{random_circuit, Netlist, RandomCircuitConfig};
use seceda_testkit::bench::target_dir;
use seceda_testkit::json::Json;
use seceda_testkit::par::with_workers;
use std::time::Instant;

struct CaseResult {
    name: String,
    gates: usize,
    sessions: usize,
    countermeasures: usize,
    evaluations: usize,
    full_ns: u128,
    incremental_ns: u128,
    speedup: f64,
    cache_hit_rate: f64,
    reports_match: bool,
}

/// Builds `sessions` schedules of `steps` countermeasures each: a
/// shared prefix (the campaign's agreed hardening sequence) plus a
/// two-step suffix that varies per session (the candidates under
/// exploration). Splice countermeasures dominate so the incremental
/// hash path is the one being measured; the periodic `ParityCheck`
/// rebuilds exercise the full-rehash fallback.
fn schedules(sessions: usize, steps: usize) -> Vec<Vec<Countermeasure>> {
    use Countermeasure::{ParityCheck, TrojanMonitor, XorLock};
    let prefix: Vec<Countermeasure> = (0..steps - 2)
        .map(|i| match i % 4 {
            0 => XorLock(4),
            1 => TrojanMonitor,
            2 => XorLock(2),
            _ => ParityCheck,
        })
        .collect();
    let suffixes: [[Countermeasure; 2]; 4] = [
        [XorLock(2), TrojanMonitor],
        [TrojanMonitor, XorLock(2)],
        [XorLock(4), TrojanMonitor],
        [TrojanMonitor, XorLock(4)],
    ];
    (0..sessions)
        .map(|s| {
            let mut schedule = prefix.clone();
            schedule.extend(suffixes[s % suffixes.len()]);
            schedule
        })
        .collect()
}

fn run_case(name: &str, nl: &Netlist, num_sessions: usize, steps: usize) -> CaseResult {
    let eval = SecurityEvaluation::default();
    let config = ClosureConfig {
        eval,
        rollback_regressions: true,
    };
    let mk = || -> Vec<ClosureSession> {
        schedules(num_sessions, steps)
            .into_iter()
            .enumerate()
            .map(|(i, schedule)| {
                ClosureSession::new(format!("s{i}"), DesignUnderTest::new(nl.clone()), schedule)
            })
            .collect()
    };
    with_workers(1, || {
        let t0 = Instant::now();
        let full = run_closure_full(mk(), &config).expect("full closure");
        let full_ns = t0.elapsed().as_nanos();
        let t1 = Instant::now();
        let cached = run_closure(mk(), &config).expect("cached closure");
        let incremental_ns = t1.elapsed().as_nanos();
        let reports_match = full.sessions.len() == cached.sessions.len()
            && full.sessions.iter().zip(&cached.sessions).all(|(f, c)| {
                f.final_report.metrics == c.final_report.metrics
                    && f.applied == c.applied
                    && f.rolled_back == c.rolled_back
            });
        CaseResult {
            name: name.to_string(),
            gates: nl.num_gates(),
            sessions: num_sessions,
            countermeasures: steps,
            evaluations: cached.total_evaluations(),
            full_ns,
            incremental_ns,
            speedup: full_ns as f64 / incremental_ns.max(1) as f64,
            cache_hit_rate: cached.cache.hit_rate(),
            reports_match,
        }
    })
}

fn main() {
    // cargo passes harness flags (--bench, filters) we don't interpret
    let quick = std::env::var("SECEDA_BENCH_QUICK").is_ok_and(|v| v != "0");
    let design = |gates, seed| {
        random_circuit(&RandomCircuitConfig {
            num_inputs: 24,
            num_gates: gates,
            num_outputs: 12,
            with_xor: true,
            seed,
        })
    };
    let results: Vec<CaseResult> = if quick {
        vec![run_case("closure_300", &design(300, 5), 4, 6)]
    } else {
        vec![
            run_case("closure_2k", &design(2_000, 5), 8, 8),
            run_case("closure_10k", &design(10_000, 6), 12, 10),
        ]
    };

    println!(
        "{:<14} {:>6} {:>8} {:>6} {:>6} {:>14} {:>14} {:>9} {:>9} {:>6}",
        "case",
        "gates",
        "sessions",
        "cms",
        "evals",
        "full_ns",
        "incremental_ns",
        "speedup",
        "hit_rate",
        "match"
    );
    for r in &results {
        println!(
            "{:<14} {:>6} {:>8} {:>6} {:>6} {:>14} {:>14} {:>8.1}x {:>9.3} {:>6}",
            r.name,
            r.gates,
            r.sessions,
            r.countermeasures,
            r.evaluations,
            r.full_ns,
            r.incremental_ns,
            r.speedup,
            r.cache_hit_rate,
            r.reports_match
        );
        assert!(
            r.reports_match,
            "{}: cached closure diverged from full recompute",
            r.name
        );
    }

    let entries: Vec<Json> = results
        .iter()
        .map(|r| {
            Json::obj()
                .field("case", r.name.as_str())
                .field("gates", r.gates)
                .field("sessions", r.sessions)
                .field("countermeasures", r.countermeasures)
                .field("evaluations", r.evaluations)
                .field("full_ns", r.full_ns as i64)
                .field("incremental_ns", r.incremental_ns as i64)
                .field("speedup", r.speedup)
                .field("cache_hit_rate", r.cache_hit_rate)
                .field("reports_match", r.reports_match)
                .build()
        })
        .collect();
    let doc = Json::obj()
        .field("bench", "compose")
        .field("quick", quick)
        .field("results", entries)
        .build();
    let path = target_dir().join("BENCH_compose.json");
    std::fs::write(&path, format!("{}\n", doc.render())).expect("write BENCH_compose.json");
    println!("wrote {}", path.display());
}
