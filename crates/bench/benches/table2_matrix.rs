//! Table II regeneration: six design stages × four threat vectors, all
//! 24 cells backed by experiments on the seceda substrate.

use seceda_core::table2;
use seceda_fia::{analyze_faults, duplicate_with_compare, FaultCampaign, InjectionModel};
use seceda_netlist::majority;
use seceda_testkit::bench::{criterion_group, criterion_main, Criterion};
use seceda_verif::prove_detection;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    println!("\n{}", table2());
    // kernels from two representative cells
    let dwc = duplicate_with_compare(&majority());
    c.bench_function("table2/fault_campaign_dwc", |b| {
        let campaign = FaultCampaign {
            model: InjectionModel::RandomGate,
            shots: 60,
            seed: 3,
        };
        b.iter(|| black_box(analyze_faults(black_box(&dwc), &campaign, 6, 4).expect("analysis")))
    });
    c.bench_function("table2/formal_detection_proof_dwc", |b| {
        b.iter(|| black_box(prove_detection(black_box(&dwc)).expect("prove")))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
