//! Table I regeneration: the four threat rows with measured evidence.

use seceda_core::table1;
use seceda_lock::{sat_attack, xor_lock};
use seceda_netlist::c17;
use seceda_testkit::bench::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    println!("\n{}", table1());
    // kernel: the piracy row's SAT attack, the most expensive experiment
    let nl = c17();
    let locked = xor_lock(&nl, 8, 7);
    c.bench_function("table1/sat_attack_c17_8bit", |b| {
        b.iter(|| {
            black_box(
                sat_attack(black_box(&locked), |x| nl.evaluate(x))
                    .expect("attack")
                    .expect("key"),
            )
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
