//! Scalar vs. packed fault-simulation benchmark.
//!
//! Grades the full stuck-at universe of each workload with the same
//! random pattern set through both engines — the retained scalar
//! reference ([`FaultSim::coverage_scalar`], one whole-circuit
//! re-simulation per (pattern, fault) pair) and the packed engine
//! ([`FaultSim::coverage`], 64 patterns per word, fault dropping,
//! cone-restricted faulty re-evaluation, threaded fault fan-out) — and
//! verifies the results are bit-identical before reporting the speedup.
//!
//! Results go to stdout as a table and to `target/BENCH_fault_sim.json`
//! (one JSON document, validated by the `check_json` bin in CI).
//!
//! `SECEDA_BENCH_QUICK=1` switches to a seconds-not-minutes smoke
//! configuration (small circuits, few patterns, one sample) used by
//! `scripts/verify.sh`.

use seceda_netlist::{alu_slice, random_circuit, ripple_adder, Netlist, RandomCircuitConfig};
use seceda_sim::{fault::stuck_at_universe, FaultSim, Lane256, SimWord};
use seceda_testkit::bench::target_dir;
use seceda_testkit::json::Json;
use seceda_testkit::rng::{Rng, SeedableRng, StdRng};
use std::time::Instant;

struct CaseResult {
    name: String,
    gates: usize,
    faults: usize,
    patterns: usize,
    lane_bits: usize,
    scalar_ns: u128,
    packed_ns: u128,
    speedup: f64,
    matches: bool,
    coverage: f64,
}

fn random_patterns(nl: &Netlist, n: usize, seed: u64) -> Vec<Vec<bool>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| (0..nl.inputs().len()).map(|_| rng.gen()).collect())
        .collect()
}

/// Median wall-clock time of `samples` runs of `f`; returns the median
/// and the result of the last run.
fn time_median<R>(samples: usize, mut f: impl FnMut() -> R) -> (u128, R) {
    let mut times = Vec::with_capacity(samples);
    let mut last = None;
    for _ in 0..samples {
        let start = Instant::now();
        last = Some(std::hint::black_box(f()));
        times.push(start.elapsed().as_nanos());
    }
    times.sort_unstable();
    (times[times.len() / 2], last.expect("at least one sample"))
}

fn run_case(
    name: &str,
    nl: &Netlist,
    num_patterns: usize,
    scalar_samples: usize,
    packed_samples: usize,
) -> CaseResult {
    let sim = FaultSim::new(nl).expect("combinational workload");
    let faults = stuck_at_universe(nl);
    let patterns = random_patterns(nl, num_patterns, 0xFA57);
    let (scalar_ns, scalar) =
        time_median(scalar_samples, || sim.coverage_scalar(&patterns, &faults));
    let (packed_ns, packed) = time_median(packed_samples, || sim.coverage(&patterns, &faults));
    CaseResult {
        name: name.to_string(),
        gates: nl.num_gates(),
        faults: faults.len(),
        patterns: num_patterns,
        lane_bits: Lane256::BITS,
        scalar_ns,
        packed_ns,
        speedup: scalar_ns as f64 / packed_ns.max(1) as f64,
        matches: scalar == packed,
        coverage: packed.1,
    }
}

fn main() {
    // cargo passes harness flags (--bench, filters) we don't interpret
    let quick = std::env::var("SECEDA_BENCH_QUICK").is_ok_and(|v| v != "0");
    let random_cfg = |gates, inputs, outputs, seed| {
        random_circuit(&RandomCircuitConfig {
            num_inputs: inputs,
            num_gates: gates,
            num_outputs: outputs,
            with_xor: true,
            seed,
        })
    };
    let results: Vec<CaseResult> = if quick {
        vec![
            run_case("ripple_adder_4", &ripple_adder(4), 16, 1, 1),
            run_case("random_60", &random_cfg(60, 8, 4, 3), 16, 1, 1),
        ]
    } else {
        vec![
            run_case("ripple_adder_32", &ripple_adder(32), 256, 3, 5),
            run_case("alu_slice_16", &alu_slice(16), 256, 3, 5),
            run_case("random_2000", &random_cfg(2000, 32, 16, 3), 256, 3, 5),
        ]
    };

    println!(
        "{:<16} {:>6} {:>7} {:>9} {:>9} {:>14} {:>14} {:>9} {:>6} {:>9}",
        "circuit",
        "gates",
        "faults",
        "patterns",
        "lane_bits",
        "scalar_ns",
        "packed_ns",
        "speedup",
        "match",
        "coverage"
    );
    for r in &results {
        println!(
            "{:<16} {:>6} {:>7} {:>9} {:>9} {:>14} {:>14} {:>8.1}x {:>6} {:>9.4}",
            r.name,
            r.gates,
            r.faults,
            r.patterns,
            r.lane_bits,
            r.scalar_ns,
            r.packed_ns,
            r.speedup,
            r.matches,
            r.coverage
        );
        assert!(r.matches, "{}: packed result diverged from scalar", r.name);
    }

    let entries: Vec<Json> = results
        .iter()
        .map(|r| {
            Json::obj()
                .field("circuit", r.name.as_str())
                .field("gates", r.gates)
                .field("faults", r.faults)
                .field("patterns", r.patterns)
                .field("lane_bits", r.lane_bits)
                .field("scalar_ns", r.scalar_ns as i64)
                .field("packed_ns", r.packed_ns as i64)
                .field("speedup", r.speedup)
                .field("match", r.matches)
                .field("coverage", r.coverage)
                .build()
        })
        .collect();
    let doc = Json::obj()
        .field("bench", "fault_sim")
        .field("quick", quick)
        .field("results", entries)
        .build();
    let path = target_dir().join("BENCH_fault_sim.json");
    std::fs::write(&path, format!("{}\n", doc.render())).expect("write BENCH_fault_sim.json");
    println!("wrote {}", path.display());
}
