//! Property-based tests for the physical-design model.

use seceda_layout::{
    lift_wires, place, proximity_attack, route, split_at, timing_report, PlacementConfig,
    RouteConfig,
};
use seceda_netlist::{random_circuit, DepthReport, RandomCircuitConfig};
use seceda_testkit::prelude::*;

fn workload(seed: u64, gates: usize) -> seceda_netlist::Netlist {
    random_circuit(&RandomCircuitConfig {
        num_inputs: 6,
        num_gates: gates,
        num_outputs: 4,
        with_xor: true,
        seed,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn placement_is_always_on_grid(seed in 0u64..2000, gates in 5usize..60) {
        let nl = workload(seed, gates);
        let p = place(&nl, &PlacementConfig {
            steps: 10,
            moves_per_step: 40,
            ..PlacementConfig::default()
        });
        prop_assert_eq!(p.gate_pos.len(), nl.num_gates());
        prop_assert!(p.gate_pos.iter().all(|&(x, y)| x < p.width && y < p.height));
        prop_assert!(p.hpwl >= 0.0);
    }

    #[test]
    fn routing_and_split_are_conservative(seed in 0u64..2000, gates in 5usize..60, layer in 1u8..8) {
        let nl = workload(seed, gates);
        let p = place(&nl, &PlacementConfig {
            steps: 5,
            moves_per_step: 30,
            ..PlacementConfig::default()
        });
        let r = route(&nl, &p, &RouteConfig::default());
        let view = split_at(&r, layer);
        prop_assert_eq!(view.visible.len() + view.hidden.len(), r.wires.len());
        // CCR is a probability
        let attack = proximity_attack(&nl, &view);
        prop_assert!((0.0..=1.0).contains(&attack.ccr));
        prop_assert!(attack.correct <= view.hidden.len());
    }

    #[test]
    fn lifting_only_raises_layers(seed in 0u64..2000, gates in 5usize..40) {
        let nl = workload(seed, gates);
        let p = place(&nl, &PlacementConfig {
            steps: 5,
            moves_per_step: 30,
            ..PlacementConfig::default()
        });
        let r = route(&nl, &p, &RouteConfig::default());
        let nets: Vec<_> = nl.gates().iter().take(5).map(|g| g.output).collect();
        let (lifted, extra) = lift_wires(&r, &nets, 6);
        prop_assert_eq!(lifted.wires.len(), r.wires.len());
        for (a, b) in r.wires.iter().zip(&lifted.wires) {
            prop_assert!(b.layer >= a.layer);
        }
        prop_assert_eq!(lifted.total_length, r.total_length + extra);
    }

    #[test]
    fn wire_delays_never_speed_up_the_design(seed in 0u64..2000, gates in 5usize..40) {
        let nl = workload(seed, gates);
        let p = place(&nl, &PlacementConfig {
            steps: 5,
            moves_per_step: 30,
            ..PlacementConfig::default()
        });
        let r = route(&nl, &p, &RouteConfig::default());
        let with_wires = timing_report(&nl, &r);
        let gates_only = DepthReport::of(&nl);
        prop_assert!(with_wires.critical_path >= gates_only.critical_path - 1e-9);
    }
}
