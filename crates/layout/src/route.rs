//! Layer-assigned global routing on top of a placement.
//!
//! Each driver→sink connection becomes a [`Wire`] with a Manhattan length
//! and a metal-layer assignment: short wires on the lowest layers, longer
//! wires promoted upward — the standard layer-by-length discipline that
//! split manufacturing (see [`crate::split`]) cuts through.

use crate::place::Placement;
use seceda_netlist::{NetId, Netlist};

/// One point-to-point connection of the routed design.
#[derive(Debug, Clone, PartialEq)]
pub struct Wire {
    /// The logical net this wire belongs to.
    pub net: NetId,
    /// Source position (driver gate or input pad).
    pub from: (u32, u32),
    /// Sink position (loading gate or output pad).
    pub to: (u32, u32),
    /// The sink: gate index, or `None` for a primary-output pad.
    pub sink_gate: Option<usize>,
    /// Manhattan length.
    pub length: u32,
    /// Assigned metal layer (1 = lowest).
    pub layer: u8,
}

/// Routing parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteConfig {
    /// Number of metal layers available.
    pub num_layers: u8,
    /// Wires of length `< quantum` go on layer 1, `< 2*quantum` on
    /// layer 2, and so on.
    pub layer_quantum: u32,
    /// Congestion-driven layer variation: each wire's layer is shifted
    /// by -1/0/+1 pseudo-randomly (deterministic per wire), as real
    /// routers promote/demote wires to resolve congestion. Without it,
    /// layers are a pure function of length — and a layer-based split
    /// would hide only long wires.
    pub congestion_jitter: bool,
}

impl Default for RouteConfig {
    fn default() -> Self {
        RouteConfig {
            num_layers: 6,
            layer_quantum: 2,
            congestion_jitter: true,
        }
    }
}

/// A routed design: placement plus wires.
#[derive(Debug, Clone, PartialEq)]
pub struct RoutedDesign {
    /// The underlying placement.
    pub placement: Placement,
    /// All point-to-point wires.
    pub wires: Vec<Wire>,
    /// Total wirelength.
    pub total_length: u64,
}

impl RoutedDesign {
    /// Number of wires on layers `>= layer`.
    pub fn wires_at_or_above(&self, layer: u8) -> usize {
        self.wires.iter().filter(|w| w.layer >= layer).count()
    }
}

/// Routes `nl` under `placement`.
pub fn route(nl: &Netlist, placement: &Placement, config: &RouteConfig) -> RoutedDesign {
    let mut wires = Vec::new();
    let mut total = 0u64;
    let source_pos = |net: NetId| -> (u32, u32) {
        if let Some(drv) = nl.net(net).driver {
            placement.gate_pos[drv.index()]
        } else if let Some(k) = nl.inputs().iter().position(|&p| p == net) {
            placement.input_pos[k]
        } else {
            (0, 0)
        }
    };
    let mut push = |net: NetId, to: (u32, u32), sink_gate: Option<usize>, wires: &mut Vec<Wire>| {
        let from = source_pos(net);
        let length = from.0.abs_diff(to.0) + from.1.abs_diff(to.1);
        let mut layer = ((length / config.layer_quantum.max(1)) + 1) as i32;
        if config.congestion_jitter {
            let h = (net.index() as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(wires.len() as u64)
                .wrapping_mul(0xBF58_476D_1CE4_E5B9);
            layer += ((h >> 17) % 3) as i32 - 1;
        }
        let layer = layer.clamp(1, config.num_layers as i32) as u8;
        total += length as u64;
        wires.push(Wire {
            net,
            from,
            to,
            sink_gate,
            length,
            layer,
        });
    };
    for (gi, g) in nl.gates().iter().enumerate() {
        for &inp in &g.inputs {
            push(inp, placement.gate_pos[gi], Some(gi), &mut wires);
        }
    }
    for (k, &(n, _)) in nl.outputs().iter().enumerate() {
        push(n, placement.output_pos[k], None, &mut wires);
    }
    RoutedDesign {
        placement: placement.clone(),
        wires,
        total_length: total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::place::{place, PlacementConfig};
    use seceda_netlist::c17;

    fn routed_c17() -> (Netlist, RoutedDesign) {
        let nl = c17();
        let p = place(&nl, &PlacementConfig::default());
        let r = route(&nl, &p, &RouteConfig::default());
        (nl, r)
    }

    #[test]
    fn every_gate_input_gets_a_wire() {
        let (nl, r) = routed_c17();
        let expected: usize =
            nl.gates().iter().map(|g| g.inputs.len()).sum::<usize>() + nl.outputs().len();
        assert_eq!(r.wires.len(), expected);
    }

    #[test]
    fn layer_grows_with_length() {
        let (_, r) = routed_c17();
        for w in &r.wires {
            assert!(w.layer >= 1 && w.layer <= 6);
            if w.length == 0 {
                assert!(w.layer <= 2, "zero-length wire jitters at most one up");
            }
        }
        // without jitter, layer is monotone in length
        let nl = c17();
        let p = place(&nl, &PlacementConfig::default());
        let plain = route(
            &nl,
            &p,
            &RouteConfig {
                congestion_jitter: false,
                ..RouteConfig::default()
            },
        );
        let mut by_len: Vec<&Wire> = plain.wires.iter().collect();
        by_len.sort_by_key(|w| w.length);
        for pair in by_len.windows(2) {
            assert!(pair[0].layer <= pair[1].layer);
        }
    }

    #[test]
    fn total_length_is_sum() {
        let (_, r) = routed_c17();
        let sum: u64 = r.wires.iter().map(|w| w.length as u64).sum();
        assert_eq!(r.total_length, sum);
    }

    #[test]
    fn wires_at_or_above_counts() {
        let (_, r) = routed_c17();
        assert_eq!(r.wires_at_or_above(1), r.wires.len());
        assert!(r.wires_at_or_above(4) <= r.wires.len());
    }
}
