//! Wire-delay-annotated static timing on a routed design.

use crate::route::RoutedDesign;
use seceda_netlist::Netlist;

/// Static timing results with wire delays.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingReport {
    /// Arrival time per net (gate delays + wire delays).
    pub arrival: Vec<f64>,
    /// Critical-path delay at the primary outputs.
    pub critical_path: f64,
    /// Contribution of wires to the critical path (absolute).
    pub wire_delay_on_critical_path: f64,
}

/// Delay of one grid unit of wire, relative to a NAND2 delay.
pub const WIRE_DELAY_PER_UNIT: f64 = 0.2;

/// Computes arrival times where each gate adds its cell delay and each
/// wire adds [`WIRE_DELAY_PER_UNIT`] per Manhattan unit.
///
/// # Panics
///
/// Panics if the netlist is cyclic.
pub fn timing_report(nl: &Netlist, routed: &RoutedDesign) -> TimingReport {
    let order = nl.topo_order().expect("cyclic netlist");
    // wire delay per (sink gate, input net): from routed wires
    let mut arrival = vec![0.0f64; nl.num_nets()];
    let mut wire_part = vec![0.0f64; nl.num_nets()];
    // index wires by (sink gate, net)
    use std::collections::HashMap;
    let mut wire_delay: HashMap<(usize, usize), f64> = HashMap::new();
    let mut output_wire: HashMap<usize, f64> = HashMap::new();
    for w in &routed.wires {
        let d = w.length as f64 * WIRE_DELAY_PER_UNIT;
        match w.sink_gate {
            Some(gi) => {
                wire_delay.insert((gi, w.net.index()), d);
            }
            None => {
                let e = output_wire.entry(w.net.index()).or_insert(0.0);
                if d > *e {
                    *e = d;
                }
            }
        }
    }
    for gid in order {
        let g = nl.gate(gid);
        let gi = gid.index();
        let mut worst = 0.0f64;
        let mut worst_wire = 0.0f64;
        for &inp in &g.inputs {
            let wd = wire_delay.get(&(gi, inp.index())).copied().unwrap_or(0.0);
            let t = arrival[inp.index()] + wd;
            if t > worst {
                worst = t;
                worst_wire = wire_part[inp.index()] + wd;
            }
        }
        let fan = g.inputs.len().max(2);
        let tree_levels = (usize::BITS - (fan - 1).leading_zeros()) as f64;
        let cell = g.kind.delay() * tree_levels.max(1.0);
        arrival[g.output.index()] = worst + cell;
        wire_part[g.output.index()] = worst_wire;
    }
    let mut critical = 0.0f64;
    let mut critical_wire = 0.0f64;
    for &(n, _) in nl.outputs() {
        let wd = output_wire.get(&n.index()).copied().unwrap_or(0.0);
        let t = arrival[n.index()] + wd;
        if t > critical {
            critical = t;
            critical_wire = wire_part[n.index()] + wd;
        }
    }
    TimingReport {
        arrival,
        critical_path: critical,
        wire_delay_on_critical_path: critical_wire,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::place::{place, PlacementConfig};
    use crate::route::{route, RouteConfig};
    use seceda_netlist::{c17, DepthReport};

    #[test]
    fn wire_delays_extend_pure_gate_timing() {
        let nl = c17();
        let p = place(&nl, &PlacementConfig::default());
        let r = route(&nl, &p, &RouteConfig::default());
        let with_wires = timing_report(&nl, &r);
        let gates_only = DepthReport::of(&nl);
        assert!(
            with_wires.critical_path >= gates_only.critical_path,
            "wires cannot make the design faster"
        );
        assert!(with_wires.wire_delay_on_critical_path >= 0.0);
    }

    #[test]
    fn zero_length_routing_matches_gate_depth() {
        // a single-gate design placed on one cell: wire lengths are small
        let mut nl = seceda_netlist::Netlist::new("one");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let y = nl.add_gate(seceda_netlist::CellKind::Nand, &[a, b]);
        nl.mark_output(y, "y");
        let p = place(&nl, &PlacementConfig::default());
        let r = route(&nl, &p, &RouteConfig::default());
        let t = timing_report(&nl, &r);
        assert!(t.critical_path >= 1.0, "at least the NAND delay");
    }
}
