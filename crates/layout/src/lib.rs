//! # seceda-layout
//!
//! Physical synthesis ("place and route") model and the physical-stage
//! security schemes of Table II.
//!
//! * [`place`](mod@place) — grid placement by simulated annealing over
//!   half-perimeter wirelength, with an optional *perturbation* defense
//!   that trades wirelength for split-manufacturing security \[54\];
//! * [`route`](mod@route) — layer-assigned global routing: short connections on low
//!   metal, long ones higher — the structural fact split manufacturing
//!   relies on;
//! * [`timing`] — wire-delay-annotated static timing on top of the
//!   placement;
//! * [`split`] — split manufacturing \[27\]: FEOL/BEOL partition at a
//!   chosen metal layer, the proximity attack \[52\] that exploits
//!   placement locality, and the wire-lifting defense \[53\];
//! * [`sensors`] — on-grid placement of fault-injection / Trojan sensors
//!   \[9\], \[26\], \[28\] with spatial coverage metrics, plus a top-metal
//!   shield model \[29\].

pub mod place;
pub mod route;
pub mod sensors;
pub mod split;
pub mod timing;

pub use place::{perturb_placement, place, Placement, PlacementConfig};
pub use route::{route, RouteConfig, RoutedDesign, Wire};
pub use sensors::{place_sensors, shield_coverage, SensorPlan, ShieldConfig};
pub use split::{lift_wires, proximity_attack, split_at, FeolView, ProximityResult};
pub use timing::{timing_report, TimingReport};
