//! Split manufacturing: FEOL/BEOL partition, the proximity attack, and
//! the wire-lifting defense.
//!
//! The untrusted foundry receives the FEOL: all gates, the wires routed
//! entirely below the split layer, and — crucially — the *partial
//! routes* of cut wires: each cut connection ascends through the lower
//! metal layers toward its partner before being severed, leaving a via
//! stub. The proximity attack \[52\] pairs up stubs by distance; it works
//! because the stubs of a true connection approach each other. The
//! wire-lifting defense \[53\] routes security-critical nets higher, so
//! their stubs stay near the endpoints and give less away; placement
//! perturbation \[54\] adds confusion at the source.

use crate::route::{RoutedDesign, Wire};
use seceda_netlist::{NetId, Netlist};

/// A cut connection as the foundry sees it: the via stubs where the
/// partial routes stop at the split layer.
#[derive(Debug, Clone, PartialEq)]
pub struct HiddenWire {
    /// The underlying (ground truth) wire.
    pub wire: Wire,
    /// Where the source-side partial route ends.
    pub source_stub: (f64, f64),
    /// Where the sink-side partial route ends.
    pub sink_stub: (f64, f64),
}

/// The foundry's view after the split.
#[derive(Debug, Clone, PartialEq)]
pub struct FeolView {
    /// Wires fully visible to the foundry (below the split layer).
    pub visible: Vec<Wire>,
    /// Cut connections with their via stubs — the ground truth the
    /// attacker tries to recover.
    pub hidden: Vec<HiddenWire>,
    /// The split layer used.
    pub split_layer: u8,
}

impl FeolView {
    /// Fraction of wires hidden from the foundry.
    pub fn hidden_fraction(&self) -> f64 {
        let total = self.visible.len() + self.hidden.len();
        if total == 0 {
            0.0
        } else {
            self.hidden.len() as f64 / total as f64
        }
    }
}

fn lerp(a: (u32, u32), b: (u32, u32), t: f64) -> (f64, f64) {
    (
        a.0 as f64 + (b.0 as f64 - a.0 as f64) * t,
        a.1 as f64 + (b.1 as f64 - a.1 as f64) * t,
    )
}

/// Splits a routed design at `split_layer`: wires on `layer >=
/// split_layer` are cut. The partial-route fraction of a cut wire is
/// `(split_layer - 1) / layer` of its Manhattan path, half from each
/// end — a wire far above the split leaves stubs near its endpoints,
/// one just above it leaves stubs near the midpoint.
pub fn split_at(routed: &RoutedDesign, split_layer: u8) -> FeolView {
    let mut visible = Vec::new();
    let mut hidden = Vec::new();
    for w in &routed.wires {
        if w.layer < split_layer {
            visible.push(w.clone());
        } else {
            let alpha = if w.layer == 0 {
                0.0
            } else {
                (split_layer.saturating_sub(1)) as f64 / (2.0 * w.layer as f64)
            };
            hidden.push(HiddenWire {
                source_stub: lerp(w.from, w.to, alpha),
                sink_stub: lerp(w.to, w.from, alpha),
                wire: w.clone(),
            });
        }
    }
    FeolView {
        visible,
        hidden,
        split_layer,
    }
}

/// The wire-lifting defense \[53\]: promotes the wires of the given nets
/// to the top layer so their stubs reveal as little as possible.
/// Returns the modified routed design and the extra (via stack)
/// wirelength cost.
pub fn lift_wires(routed: &RoutedDesign, nets: &[NetId], top_layer: u8) -> (RoutedDesign, u64) {
    let mut lifted = routed.clone();
    let mut extra = 0u64;
    for w in &mut lifted.wires {
        if nets.contains(&w.net) && w.layer < top_layer {
            extra += (top_layer - w.layer) as u64;
            w.layer = top_layer;
        }
    }
    lifted.total_length += extra;
    (lifted, extra)
}

/// Result of a proximity attack.
#[derive(Debug, Clone, PartialEq)]
pub struct ProximityResult {
    /// For each hidden connection (in [`FeolView::hidden`] order), the
    /// net whose source stub the attacker paired with its sink stub.
    pub guesses: Vec<NetId>,
    /// Number of correctly recovered connections.
    pub correct: usize,
    /// Correct-connection rate: `correct / hidden`.
    pub ccr: f64,
}

/// The proximity attack \[52\]: pair every sink stub with the closest
/// source stub. A guess is correct when the paired source stub belongs
/// to the true net.
pub fn proximity_attack(nl: &Netlist, view: &FeolView) -> ProximityResult {
    let _ = nl;
    // the foundry sees each stub's via-stack height (= wire layer), so
    // only stubs on the same layer are plausible partners
    let sources: Vec<(NetId, u8, (f64, f64))> = view
        .hidden
        .iter()
        .map(|h| (h.wire.net, h.wire.layer, h.source_stub))
        .collect();
    let mut guesses = Vec::with_capacity(view.hidden.len());
    let mut correct = 0usize;
    for h in &view.hidden {
        let sink = h.sink_stub;
        let mut best_net = NetId::from_index(0);
        let mut best_d = f64::INFINITY;
        for &(net, layer, (sx, sy)) in &sources {
            if layer != h.wire.layer {
                continue;
            }
            let d = (sx - sink.0).abs() + (sy - sink.1).abs();
            if d < best_d {
                best_d = d;
                best_net = net;
            }
        }
        if best_net == h.wire.net {
            correct += 1;
        }
        guesses.push(best_net);
    }
    let ccr = if view.hidden.is_empty() {
        1.0
    } else {
        correct as f64 / view.hidden.len() as f64
    };
    ProximityResult {
        guesses,
        correct,
        ccr,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::place::{perturb_placement, place, PlacementConfig};
    use crate::route::{route, RouteConfig};
    use seceda_netlist::{random_circuit, RandomCircuitConfig};

    fn workload() -> (Netlist, RoutedDesign) {
        let nl = random_circuit(&RandomCircuitConfig {
            num_gates: 120,
            num_inputs: 10,
            num_outputs: 6,
            ..RandomCircuitConfig::default()
        });
        let p = place(&nl, &PlacementConfig::default());
        let r = route(&nl, &p, &RouteConfig::default());
        (nl, r)
    }

    #[test]
    fn split_partitions_all_wires() {
        let (_, r) = workload();
        let view = split_at(&r, 3);
        assert_eq!(view.visible.len() + view.hidden.len(), r.wires.len());
        assert!(view.visible.iter().all(|w| w.layer < 3));
        assert!(view.hidden.iter().all(|h| h.wire.layer >= 3));
    }

    #[test]
    fn lower_split_hides_more() {
        let (_, r) = workload();
        let high = split_at(&r, 5);
        let low = split_at(&r, 2);
        assert!(low.hidden_fraction() > high.hidden_fraction());
    }

    #[test]
    fn stubs_converge_for_barely_hidden_wires() {
        let (_, r) = workload();
        let view = split_at(&r, 3);
        for h in &view.hidden {
            let gap =
                (h.source_stub.0 - h.sink_stub.0).abs() + (h.source_stub.1 - h.sink_stub.1).abs();
            let full = h.wire.length as f64;
            assert!(gap <= full + 1e-9, "stub gap cannot exceed wire length");
            if h.wire.layer == 3 && h.wire.length > 0 {
                assert!(gap < full, "partial routes must have approached each other");
            }
        }
    }

    #[test]
    fn proximity_attack_beats_chance_on_optimized_placement() {
        let (nl, r) = workload();
        let view = split_at(&r, 5);
        assert!(!view.hidden.is_empty(), "need hidden wires to attack");
        let result = proximity_attack(&nl, &view);
        // random guessing among the hidden sources would land around
        // 1/|hidden|; the attack must do far better
        let chance = 1.0 / view.hidden.len() as f64;
        assert!(
            result.ccr > 0.25 && result.ccr > 4.0 * chance,
            "proximity attack should exploit stub locality: ccr = {} (chance {chance})",
            result.ccr
        );
    }

    #[test]
    fn splitting_lower_is_more_secure() {
        // the headline step-metric of the split-manufacturing literature:
        // the lower the split layer, the lower the attacker's CCR
        let (nl, r) = workload();
        let ccr_low = proximity_attack(&nl, &split_at(&r, 2)).ccr;
        let ccr_high = proximity_attack(&nl, &split_at(&r, 5)).ccr;
        assert!(
            ccr_low < ccr_high,
            "lower split must hurt the attacker: {ccr_low} vs {ccr_high}"
        );
    }

    #[test]
    fn perturbation_lowers_attack_accuracy() {
        let (nl, r) = workload();
        let view = split_at(&r, 3);
        let base = proximity_attack(&nl, &view);
        let perturbed = perturb_placement(&nl, &r.placement, 5, 99);
        let r2 = route(&nl, &perturbed, &RouteConfig::default());
        let view2 = split_at(&r2, 3);
        let attacked = proximity_attack(&nl, &view2);
        assert!(
            attacked.ccr < base.ccr,
            "perturbation must hurt the attack: {} vs {}",
            attacked.ccr,
            base.ccr
        );
    }

    #[test]
    fn lifting_lowers_attack_accuracy_on_lifted_nets() {
        let (nl, r) = workload();
        let view = split_at(&r, 3);
        let base = proximity_attack(&nl, &view);
        // lift every net that was hidden: stubs retreat to the endpoints
        let hidden_nets: Vec<NetId> = view.hidden.iter().map(|h| h.wire.net).collect();
        let (lifted, extra) = lift_wires(&r, &hidden_nets, 6);
        assert!(extra > 0, "lifting must cost vias");
        let view2 = split_at(&lifted, 3);
        let attacked = proximity_attack(&nl, &view2);
        assert!(
            attacked.ccr < base.ccr,
            "lifting must hurt the attack: {} vs {}",
            attacked.ccr,
            base.ccr
        );
    }

    #[test]
    fn empty_hidden_set_is_trivially_safe() {
        let (nl, r) = workload();
        let view = split_at(&r, 7); // above the top layer
        assert!(view.hidden.is_empty());
        let result = proximity_attack(&nl, &view);
        assert_eq!(result.ccr, 1.0);
        assert_eq!(result.correct, 0);
    }
}
