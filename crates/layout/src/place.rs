//! Grid placement by simulated annealing.

use seceda_netlist::Netlist;
use seceda_testkit::rng::{Rng, SeedableRng, StdRng};

/// A placed design: one grid cell per gate, primary inputs on the west
/// edge, primary outputs on the east edge.
#[derive(Debug, Clone, PartialEq)]
pub struct Placement {
    /// Grid width (x dimension).
    pub width: u32,
    /// Grid height (y dimension).
    pub height: u32,
    /// Gate positions, indexed by gate index.
    pub gate_pos: Vec<(u32, u32)>,
    /// Primary-input pad positions, indexed by input order.
    pub input_pos: Vec<(u32, u32)>,
    /// Primary-output pad positions, indexed by output order.
    pub output_pos: Vec<(u32, u32)>,
    /// Final half-perimeter wirelength.
    pub hpwl: f64,
}

/// Annealing parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlacementConfig {
    /// Swap moves per temperature step.
    pub moves_per_step: usize,
    /// Number of temperature steps.
    pub steps: usize,
    /// Initial temperature (in HPWL units).
    pub initial_temperature: f64,
    /// Geometric cooling factor per step.
    pub cooling: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PlacementConfig {
    fn default() -> Self {
        PlacementConfig {
            moves_per_step: 200,
            steps: 60,
            initial_temperature: 10.0,
            cooling: 0.9,
            seed: 0x0091_ACE5,
        }
    }
}

/// Pin location of a net endpoint: the driving gate, a PI pad, or
/// unplaced (constant drivers sit at the origin).
fn net_source_pos(
    nl: &Netlist,
    placement_gate_pos: &[(u32, u32)],
    input_pos: &[(u32, u32)],
    net: seceda_netlist::NetId,
) -> (u32, u32) {
    if let Some(drv) = nl.net(net).driver {
        return placement_gate_pos[drv.index()];
    }
    if let Some(k) = nl.inputs().iter().position(|&p| p == net) {
        return input_pos[k];
    }
    (0, 0)
}

/// Computes total HPWL of all nets under the given gate positions.
pub(crate) fn total_hpwl(
    nl: &Netlist,
    gate_pos: &[(u32, u32)],
    input_pos: &[(u32, u32)],
    output_pos: &[(u32, u32)],
) -> f64 {
    let mut total = 0.0;
    // bounding box per net, extended by source, gate sinks, and PO pads
    let mut bbox: Vec<Option<(u32, u32, u32, u32)>> = vec![None; nl.num_nets()];
    let extend = |bbox: &mut Vec<Option<(u32, u32, u32, u32)>>, net: usize, p: (u32, u32)| {
        let entry = &mut bbox[net];
        *entry = Some(match *entry {
            None => (p.0, p.0, p.1, p.1),
            Some((lx, hx, ly, hy)) => (lx.min(p.0), hx.max(p.0), ly.min(p.1), hy.max(p.1)),
        });
    };
    let mut has_sink = vec![false; nl.num_nets()];
    for (gi, g) in nl.gates().iter().enumerate() {
        for &inp in &g.inputs {
            extend(&mut bbox, inp.index(), gate_pos[gi]);
            has_sink[inp.index()] = true;
        }
    }
    for (k, &(n, _)) in nl.outputs().iter().enumerate() {
        extend(&mut bbox, n.index(), output_pos[k]);
        has_sink[n.index()] = true;
    }
    for net_idx in 0..nl.num_nets() {
        if !has_sink[net_idx] {
            continue;
        }
        let net = seceda_netlist::NetId::from_index(net_idx);
        let src = net_source_pos(nl, gate_pos, input_pos, net);
        extend(&mut bbox, net_idx, src);
        if let Some((lx, hx, ly, hy)) = bbox[net_idx] {
            total += (hx - lx) as f64 + (hy - ly) as f64;
        }
    }
    total
}

/// Places `nl` on a square grid, minimizing HPWL with simulated
/// annealing.
///
/// # Panics
///
/// Panics if the netlist has no gates.
pub fn place(nl: &Netlist, config: &PlacementConfig) -> Placement {
    let n = nl.num_gates();
    assert!(n > 0, "cannot place an empty netlist");
    let side = (n as f64).sqrt().ceil() as u32;
    let width = side.max(2);
    let height = side.max(2);
    let mut rng = StdRng::seed_from_u64(config.seed);

    // initial placement: row-major
    let mut gate_pos: Vec<(u32, u32)> = (0..n as u32).map(|i| (i % width, i / width)).collect();
    let input_pos: Vec<(u32, u32)> = (0..nl.inputs().len())
        .map(|k| {
            (
                0,
                (k as u32 * height.max(1)) / nl.inputs().len().max(1) as u32,
            )
        })
        .collect();
    let output_pos: Vec<(u32, u32)> = (0..nl.outputs().len())
        .map(|k| {
            (
                width.saturating_sub(1),
                (k as u32 * height.max(1)) / nl.outputs().len().max(1) as u32,
            )
        })
        .collect();

    let mut cost = total_hpwl(nl, &gate_pos, &input_pos, &output_pos);
    let mut temperature = config.initial_temperature;
    for _ in 0..config.steps {
        for _ in 0..config.moves_per_step {
            let a = rng.gen_range(0..n);
            let b = rng.gen_range(0..n);
            if a == b {
                continue;
            }
            gate_pos.swap(a, b);
            let new_cost = total_hpwl(nl, &gate_pos, &input_pos, &output_pos);
            let delta = new_cost - cost;
            if delta <= 0.0 || rng.gen_bool((-delta / temperature).exp().clamp(0.0, 1.0)) {
                cost = new_cost;
            } else {
                gate_pos.swap(a, b); // revert
            }
        }
        temperature *= config.cooling;
    }
    Placement {
        width,
        height,
        gate_pos,
        input_pos,
        output_pos,
        hpwl: cost,
    }
}

/// The placement-perturbation defense \[54\]: each gate is moved by a
/// uniform offset in `[-radius, radius]²` (clamped to the grid),
/// deliberately destroying the placement locality the proximity attack
/// feeds on. Returns the perturbed placement with its (worse) HPWL.
pub fn perturb_placement(nl: &Netlist, placement: &Placement, radius: u32, seed: u64) -> Placement {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut perturbed = placement.clone();
    let r = radius as i64;
    for pos in &mut perturbed.gate_pos {
        let dx = rng.gen_range(-r..=r);
        let dy = rng.gen_range(-r..=r);
        pos.0 = (pos.0 as i64 + dx).clamp(0, placement.width as i64 - 1) as u32;
        pos.1 = (pos.1 as i64 + dy).clamp(0, placement.height as i64 - 1) as u32;
    }
    perturbed.hpwl = total_hpwl(
        nl,
        &perturbed.gate_pos,
        &perturbed.input_pos,
        &perturbed.output_pos,
    );
    perturbed
}

#[cfg(test)]
mod tests {
    use super::*;
    use seceda_netlist::{c17, random_circuit, RandomCircuitConfig};

    #[test]
    fn placement_covers_all_gates() {
        let nl = c17();
        let p = place(&nl, &PlacementConfig::default());
        assert_eq!(p.gate_pos.len(), nl.num_gates());
        assert!(p.gate_pos.iter().all(|&(x, y)| x < p.width && y < p.height));
        assert!(p.hpwl > 0.0);
    }

    #[test]
    fn annealing_improves_over_initial() {
        let nl = random_circuit(&RandomCircuitConfig {
            num_gates: 80,
            num_inputs: 8,
            num_outputs: 4,
            ..RandomCircuitConfig::default()
        });
        let quick = place(
            &nl,
            &PlacementConfig {
                steps: 0,
                ..PlacementConfig::default()
            },
        );
        let full = place(&nl, &PlacementConfig::default());
        assert!(
            full.hpwl < quick.hpwl,
            "annealing should beat row-major: {} vs {}",
            full.hpwl,
            quick.hpwl
        );
    }

    #[test]
    fn perturbation_degrades_wirelength() {
        let nl = random_circuit(&RandomCircuitConfig {
            num_gates: 80,
            num_inputs: 8,
            num_outputs: 4,
            ..RandomCircuitConfig::default()
        });
        let p = place(&nl, &PlacementConfig::default());
        let q = perturb_placement(&nl, &p, 4, 77);
        assert!(q.hpwl > p.hpwl, "perturbation costs wirelength");
        assert!(q.gate_pos.iter().all(|&(x, y)| x < q.width && y < q.height));
    }

    #[test]
    fn deterministic_for_seed() {
        let nl = c17();
        let a = place(&nl, &PlacementConfig::default());
        let b = place(&nl, &PlacementConfig::default());
        assert_eq!(a, b);
    }
}
