//! Physical security structures: fault-injection sensors and shields.
//!
//! Sensors \[9\], \[26\] detect local disturbances (laser spots, EM probes,
//! delay anomalies from Trojans) within a radius. Shields \[29\] are
//! top-metal meshes that intercept frontside probing and optical fault
//! injection over a covered area fraction.

use crate::place::Placement;

/// A set of placed sensors and their coverage statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct SensorPlan {
    /// Sensor positions on the placement grid.
    pub positions: Vec<(u32, u32)>,
    /// Detection radius (Chebyshev distance).
    pub radius: u32,
    /// Fraction of grid cells within radius of at least one sensor.
    pub coverage: f64,
}

impl SensorPlan {
    /// Whether a disturbance at `(x, y)` is detected.
    pub fn detects(&self, x: u32, y: u32) -> bool {
        self.positions
            .iter()
            .any(|&(sx, sy)| sx.abs_diff(x).max(sy.abs_diff(y)) <= self.radius)
    }
}

/// Greedy max-coverage sensor placement: each sensor goes to the grid
/// cell covering the most currently-uncovered cells.
///
/// # Panics
///
/// Panics if `count` is zero.
pub fn place_sensors(placement: &Placement, count: usize, radius: u32) -> SensorPlan {
    assert!(count > 0, "need at least one sensor");
    let w = placement.width;
    let h = placement.height;
    let mut covered = vec![false; (w * h) as usize];
    let idx = |x: u32, y: u32| (y * w + x) as usize;
    let mut positions = Vec::with_capacity(count);
    for _ in 0..count {
        let mut best = (0u32, 0u32);
        let mut best_gain = 0usize;
        for x in 0..w {
            for y in 0..h {
                let mut gain = 0;
                for cx in x.saturating_sub(radius)..=(x + radius).min(w - 1) {
                    for cy in y.saturating_sub(radius)..=(y + radius).min(h - 1) {
                        if !covered[idx(cx, cy)] {
                            gain += 1;
                        }
                    }
                }
                if gain > best_gain {
                    best_gain = gain;
                    best = (x, y);
                }
            }
        }
        if best_gain == 0 {
            break; // fully covered
        }
        let (x, y) = best;
        for cx in x.saturating_sub(radius)..=(x + radius).min(w - 1) {
            for cy in y.saturating_sub(radius)..=(y + radius).min(h - 1) {
                covered[idx(cx, cy)] = true;
            }
        }
        positions.push(best);
    }
    let coverage = covered.iter().filter(|&&c| c).count() as f64 / covered.len() as f64;
    SensorPlan {
        positions,
        radius,
        coverage,
    }
}

/// Shield parameters: a top-metal mesh with a given pitch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShieldConfig {
    /// Mesh line every `pitch` grid units (smaller = denser = better
    /// coverage, higher routing cost).
    pub pitch: u32,
}

/// Fraction of the die area protected by the shield mesh, plus the
/// number of routing tracks it consumes.
pub fn shield_coverage(placement: &Placement, config: &ShieldConfig) -> (f64, u32) {
    let pitch = config.pitch.max(1);
    // mesh lines in both directions; a cell is covered if a line passes
    // through its row or column
    let covered_cols = placement.width.div_ceil(pitch);
    let covered_rows = placement.height.div_ceil(pitch);
    let total = (placement.width * placement.height) as f64;
    let covered = (covered_cols * placement.height + covered_rows * placement.width
        - covered_cols * covered_rows) as f64;
    ((covered / total).min(1.0), covered_cols + covered_rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::place::{place, PlacementConfig};
    use seceda_netlist::{random_circuit, RandomCircuitConfig};

    fn placement() -> Placement {
        let nl = random_circuit(&RandomCircuitConfig {
            num_gates: 100,
            ..RandomCircuitConfig::default()
        });
        place(&nl, &PlacementConfig::default())
    }

    #[test]
    fn more_sensors_more_coverage() {
        let p = placement();
        let few = place_sensors(&p, 1, 2);
        let many = place_sensors(&p, 6, 2);
        assert!(many.coverage >= few.coverage);
        assert!(many.coverage > 0.5, "six radius-2 sensors on a 10x10 grid");
    }

    #[test]
    fn detection_matches_radius() {
        let p = placement();
        let plan = place_sensors(&p, 1, 2);
        let (sx, sy) = plan.positions[0];
        assert!(plan.detects(sx, sy));
        assert!(plan.detects(sx.saturating_sub(2), sy));
        if sx + 3 < p.width {
            assert!(!plan.detects(sx + 3, sy + 3));
        }
    }

    #[test]
    fn denser_shield_covers_more() {
        let p = placement();
        let (sparse, cost_sparse) = shield_coverage(&p, &ShieldConfig { pitch: 5 });
        let (dense, cost_dense) = shield_coverage(&p, &ShieldConfig { pitch: 1 });
        assert!(dense >= sparse);
        assert!((dense - 1.0).abs() < 1e-9, "pitch-1 mesh covers everything");
        assert!(cost_dense > cost_sparse, "density costs routing tracks");
    }

    #[test]
    fn full_coverage_stops_adding_sensors() {
        let p = placement();
        let plan = place_sensors(&p, 1000, 10);
        assert!((plan.coverage - 1.0).abs() < 1e-9);
        assert!(plan.positions.len() < 1000, "greedy stops when covered");
    }
}
