//! Property-based tests for the synthesis passes, including the
//! security-vs-optimization contract: classical mode may restructure
//! anything; security-aware mode must leave protected gates alone.

use seceda_netlist::{random_circuit, GateTags, Netlist, RandomCircuitConfig};
use seceda_synth::{
    decompose_to_two_input, dedup, fold_constants, map_to_nand, map_to_xag, optimize, reassociate,
    sweep, wddl_transform, SynthesisMode, WddlNetlist,
};
use seceda_testkit::prelude::*;

fn host(seed: u64, gates: usize) -> Netlist {
    random_circuit(&RandomCircuitConfig {
        num_inputs: 5,
        num_gates: gates,
        num_outputs: 3,
        with_xor: true,
        seed,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn every_pass_preserves_function(seed in 0u64..5000, gates in 3usize..45) {
        let nl = host(seed, gates);
        let reference = nl.truth_table();
        for (name, result) in [
            ("fold", fold_constants(&nl, SynthesisMode::Classical)),
            ("dedup", dedup(&nl, SynthesisMode::Classical)),
            ("sweep", sweep(&nl, SynthesisMode::Classical)),
            ("optimize", optimize(&nl, SynthesisMode::Classical)),
            ("decompose", decompose_to_two_input(&nl)),
            ("nand", map_to_nand(&nl)),
            ("xag", map_to_xag(&nl)),
            ("reassoc", reassociate(&nl, SynthesisMode::Classical).0),
            ("reassoc-aware", reassociate(&nl, SynthesisMode::SecurityAware).0),
        ] {
            prop_assert!(result.validate().is_ok(), "{} broke structure", name);
            prop_assert_eq!(result.truth_table(), reference.clone(), "{} broke function", name);
        }
    }

    #[test]
    fn optimization_never_grows_the_netlist(seed in 0u64..5000, gates in 3usize..45) {
        let nl = host(seed, gates);
        let optimized = optimize(&nl, SynthesisMode::Classical);
        prop_assert!(optimized.num_gates() <= nl.num_gates());
    }

    #[test]
    fn security_aware_mode_preserves_all_protected_gates(
        seed in 0u64..5000,
        gates in 3usize..30,
        protect_every in 2usize..5,
    ) {
        // tag a subset of gates as protected redundancy; count survivors
        let mut nl = host(seed, gates);
        let mut protected = 0usize;
        for gi in 0..nl.num_gates() {
            if gi % protect_every == 0 {
                let gid = seceda_netlist::GateId::from_index(gi);
                nl.gate_mut(gid).tags = GateTags {
                    redundancy: true,
                    ..GateTags::default()
                };
                protected += 1;
            }
        }
        let aware = dedup(&fold_constants(&nl, SynthesisMode::SecurityAware), SynthesisMode::SecurityAware);
        let survivors = aware.gates().iter().filter(|g| g.tags.redundancy).count();
        prop_assert_eq!(survivors, protected, "security-aware passes must keep protected gates");
    }

    #[test]
    fn wddl_keeps_constant_hamming_weight(seed in 0u64..3000, gates in 3usize..25) {
        let nl = host(seed, gates);
        let wddl = wddl_transform(&nl);
        let mut weights = std::collections::BTreeSet::new();
        for pattern in 0..32u32 {
            let inputs: Vec<bool> = (0..5).map(|b| (pattern >> b) & 1 == 1).collect();
            prop_assert_eq!(
                WddlNetlist::collapse_outputs(
                    &wddl.netlist.evaluate(&WddlNetlist::expand_inputs(&inputs))
                ),
                nl.evaluate(&inputs)
            );
            let values = wddl
                .netlist
                .eval_nets(&WddlNetlist::expand_inputs(&inputs), &[])
                .expect("eval");
            let hw: usize = wddl
                .rails
                .values()
                .map(|&(t, f)| values[t.index()] as usize + values[f.index()] as usize)
                .sum();
            weights.insert(hw);
        }
        prop_assert_eq!(weights.len(), 1, "hiding requires data-independent HW");
    }
}
