//! Technology mapping: arity decomposition and NAND-library mapping.

use crate::rewrite::Rebuilder;
use seceda_netlist::{CellKind, GateId, NetId, Netlist};

/// Decomposes every gate with more than two inputs into a balanced tree
/// of 2-input gates of the same family. MUX, DFF and 1-input cells pass
/// through unchanged. Gate tags are inherited by every decomposed piece.
pub fn decompose_to_two_input(nl: &Netlist) -> Netlist {
    let order = nl.topo_order().expect("cyclic netlist");
    let mut rb = Rebuilder::new(nl);
    let dff_pairs: Vec<(GateId, GateId)> = nl
        .dffs()
        .iter()
        .map(|&d| (d, rb.predeclare_dff(nl, d)))
        .collect();
    for gid in order {
        let g = nl.gate(gid);
        if g.inputs.len() <= 2 || matches!(g.kind, CellKind::Mux) {
            rb.copy_gate(nl, gid);
            continue;
        }
        let ins: Vec<NetId> = g.inputs.iter().map(|&i| rb.net(i)).collect();
        // base family + optional output inversion
        let (base, invert) = match g.kind {
            CellKind::And => (CellKind::And, false),
            CellKind::Nand => (CellKind::And, true),
            CellKind::Or => (CellKind::Or, false),
            CellKind::Nor => (CellKind::Or, true),
            CellKind::Xor => (CellKind::Xor, false),
            CellKind::Xnor => (CellKind::Xor, true),
            k => unreachable!("wide {k} cannot exist"),
        };
        let mut layer = ins;
        while layer.len() > 1 {
            let mut next = Vec::with_capacity(layer.len().div_ceil(2));
            for pair in layer.chunks(2) {
                if pair.len() == 2 {
                    next.push(
                        rb.netlist_mut()
                            .add_gate_tagged(base, &[pair[0], pair[1]], g.tags),
                    );
                } else {
                    next.push(pair[0]);
                }
            }
            layer = next;
        }
        let mut out = layer[0];
        if invert {
            out = rb
                .netlist_mut()
                .add_gate_tagged(CellKind::Not, &[out], g.tags);
        }
        rb.alias(g.output, out);
    }
    for (old, new) in dff_pairs {
        rb.patch_dff(nl, old, new);
    }
    rb.finish(nl)
}

/// Maps the combinational logic onto a {NAND2, NOT} library (DFFs and
/// constants pass through). Run [`decompose_to_two_input`] first; wide
/// gates are decomposed on the fly anyway.
pub fn map_to_nand(nl: &Netlist) -> Netlist {
    let two = decompose_to_two_input(nl);
    let order = two.topo_order().expect("cyclic netlist");
    let mut rb = Rebuilder::new(&two);
    let dff_pairs: Vec<(GateId, GateId)> = two
        .dffs()
        .iter()
        .map(|&d| (d, rb.predeclare_dff(&two, d)))
        .collect();
    for gid in order {
        let g = two.gate(gid);
        let tags = g.tags;
        let ins: Vec<NetId> = g.inputs.iter().map(|&i| rb.net(i)).collect();
        let nl2 = rb.netlist_mut();
        let nand = |nl2: &mut Netlist, a: NetId, b: NetId| {
            nl2.add_gate_tagged(CellKind::Nand, &[a, b], tags)
        };
        let inv = |nl2: &mut Netlist, a: NetId| nl2.add_gate_tagged(CellKind::Not, &[a], tags);
        let out = match g.kind {
            CellKind::Const0 | CellKind::Const1 => {
                rb.copy_gate(&two, gid);
                continue;
            }
            CellKind::Dff => unreachable!("DFFs are not in the combinational order"),
            CellKind::Buf => ins[0],
            CellKind::Not => inv(nl2, ins[0]),
            CellKind::Nand => nand(nl2, ins[0], ins[1]),
            CellKind::And => {
                let n = nand(nl2, ins[0], ins[1]);
                inv(nl2, n)
            }
            CellKind::Or => {
                let na = inv(nl2, ins[0]);
                let nb = inv(nl2, ins[1]);
                nand(nl2, na, nb)
            }
            CellKind::Nor => {
                let na = inv(nl2, ins[0]);
                let nb = inv(nl2, ins[1]);
                let o = nand(nl2, na, nb);
                inv(nl2, o)
            }
            CellKind::Xor | CellKind::Xnor => {
                // xor via four NANDs
                let t = nand(nl2, ins[0], ins[1]);
                let l = nand(nl2, ins[0], t);
                let r = nand(nl2, ins[1], t);
                let x = nand(nl2, l, r);
                if g.kind == CellKind::Xnor {
                    inv(nl2, x)
                } else {
                    x
                }
            }
            CellKind::Mux => {
                // y = (s ? b : a) = nand(nand(s, b), nand(!s, a))
                let ns = inv(nl2, ins[0]);
                let t1 = nand(nl2, ins[0], ins[2]);
                let t2 = nand(nl2, ns, ins[1]);
                nand(nl2, t1, t2)
            }
        };
        rb.alias(g.output, out);
    }
    for (old, new) in dff_pairs {
        rb.patch_dff(&two, old, new);
    }
    rb.finish(&two)
}

/// Maps the combinational logic onto an XOR-AND-INV library ({AND2, XOR2,
/// NOT, constants}; DFFs pass through). This is the canonical input form
/// for Boolean masking transforms, which only have gadgets for these three
/// operations.
pub fn map_to_xag(nl: &Netlist) -> Netlist {
    let two = decompose_to_two_input(nl);
    let order = two.topo_order().expect("cyclic netlist");
    let mut rb = Rebuilder::new(&two);
    let dff_pairs: Vec<(GateId, GateId)> = two
        .dffs()
        .iter()
        .map(|&d| (d, rb.predeclare_dff(&two, d)))
        .collect();
    for gid in order {
        let g = two.gate(gid);
        let tags = g.tags;
        let ins: Vec<NetId> = g.inputs.iter().map(|&i| rb.net(i)).collect();
        let out = match g.kind {
            CellKind::Const0 | CellKind::Const1 => {
                rb.copy_gate(&two, gid);
                continue;
            }
            CellKind::Dff => unreachable!("DFFs are not in the combinational order"),
            CellKind::Buf => ins[0],
            CellKind::Not | CellKind::And | CellKind::Xor => {
                rb.copy_gate(&two, gid);
                continue;
            }
            CellKind::Nand => {
                let a = rb.netlist_mut().add_gate_tagged(CellKind::And, &ins, tags);
                rb.netlist_mut().add_gate_tagged(CellKind::Not, &[a], tags)
            }
            CellKind::Or => {
                // a + b = a ^ b ^ ab
                let x = rb.netlist_mut().add_gate_tagged(CellKind::Xor, &ins, tags);
                let a = rb.netlist_mut().add_gate_tagged(CellKind::And, &ins, tags);
                rb.netlist_mut()
                    .add_gate_tagged(CellKind::Xor, &[x, a], tags)
            }
            CellKind::Nor => {
                let x = rb.netlist_mut().add_gate_tagged(CellKind::Xor, &ins, tags);
                let a = rb.netlist_mut().add_gate_tagged(CellKind::And, &ins, tags);
                let o = rb
                    .netlist_mut()
                    .add_gate_tagged(CellKind::Xor, &[x, a], tags);
                rb.netlist_mut().add_gate_tagged(CellKind::Not, &[o], tags)
            }
            CellKind::Xnor => {
                let x = rb.netlist_mut().add_gate_tagged(CellKind::Xor, &ins, tags);
                rb.netlist_mut().add_gate_tagged(CellKind::Not, &[x], tags)
            }
            CellKind::Mux => {
                // y = a ^ s·(a ^ b)
                let ab = rb
                    .netlist_mut()
                    .add_gate_tagged(CellKind::Xor, &[ins[1], ins[2]], tags);
                let sel = rb
                    .netlist_mut()
                    .add_gate_tagged(CellKind::And, &[ins[0], ab], tags);
                rb.netlist_mut()
                    .add_gate_tagged(CellKind::Xor, &[ins[1], sel], tags)
            }
        };
        rb.alias(g.output, out);
    }
    for (old, new) in dff_pairs {
        rb.patch_dff(&two, old, new);
    }
    rb.finish(&two)
}

#[cfg(test)]
mod tests {
    use super::*;
    use seceda_netlist::{alu_slice, c17, majority, parity_tree};

    #[test]
    fn xag_mapping_preserves_function() {
        for nl in [c17(), majority(), parity_tree(4), alu_slice(2)] {
            let xag = map_to_xag(&nl);
            assert_eq!(nl.truth_table(), xag.truth_table(), "{}", nl.name());
            assert!(xag.gates().iter().all(|g| matches!(
                g.kind,
                CellKind::And | CellKind::Xor | CellKind::Not | CellKind::Const0 | CellKind::Const1
            )));
        }
    }

    #[test]
    fn decompose_preserves_function() {
        let mut nl = Netlist::new("wide");
        let ins: Vec<_> = (0..5).map(|i| nl.add_input(format!("i{i}"))).collect();
        let a = nl.add_gate(CellKind::And, &ins);
        let x = nl.add_gate(CellKind::Xnor, &ins);
        let o = nl.add_gate(CellKind::Nor, &ins);
        nl.mark_output(a, "a");
        nl.mark_output(x, "x");
        nl.mark_output(o, "o");
        let two = decompose_to_two_input(&nl);
        assert_eq!(nl.truth_table(), two.truth_table());
        assert!(two.gates().iter().all(|g| g.inputs.len() <= 3));
        assert!(two
            .gates()
            .iter()
            .filter(|g| g.kind != CellKind::Mux)
            .all(|g| g.inputs.len() <= 2));
    }

    #[test]
    fn nand_mapping_preserves_benchmarks() {
        for nl in [c17(), majority(), parity_tree(5)] {
            let mapped = map_to_nand(&nl);
            assert_eq!(nl.truth_table(), mapped.truth_table(), "{}", nl.name());
            assert!(mapped.gates().iter().all(|g| matches!(
                g.kind,
                CellKind::Nand | CellKind::Not | CellKind::Const0 | CellKind::Const1
            )));
        }
    }

    #[test]
    fn nand_mapping_handles_mux_heavy_designs() {
        let nl = alu_slice(2);
        let mapped = map_to_nand(&nl);
        assert_eq!(nl.truth_table(), mapped.truth_table());
    }

    #[test]
    fn tags_survive_mapping() {
        use seceda_netlist::GateTags;
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let bar = GateTags {
            no_reassoc: true,
            ..GateTags::default()
        };
        let y = nl.add_gate_tagged(CellKind::Xor, &[a, b], bar);
        nl.mark_output(y, "y");
        let mapped = map_to_nand(&nl);
        assert!(mapped.gates().iter().all(|g| g.tags.no_reassoc));
    }
}
