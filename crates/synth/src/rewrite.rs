//! Cleanup passes: constant folding, CSE, dead-logic sweep.

use crate::SynthesisMode;
use seceda_netlist::{CellKind, GateId, NetId, Netlist};
use std::collections::HashMap;

/// Incremental netlist rebuilder: copies a netlist gate by gate while a
/// pass substitutes, drops, or rewrites gates.
pub(crate) struct Rebuilder {
    out: Netlist,
    map: Vec<Option<NetId>>,
}

impl Rebuilder {
    /// Starts a rebuild, copying the primary inputs.
    pub fn new(src: &Netlist) -> Self {
        let mut out = Netlist::new(src.name());
        let mut map = vec![None; src.num_nets()];
        for &pi in src.inputs() {
            let name = src.net_label(pi);
            map[pi.index()] = Some(out.add_input(name));
        }
        Rebuilder { out, map }
    }

    /// The new net corresponding to `old`.
    ///
    /// # Panics
    ///
    /// Panics if `old` has not been mapped yet (pass bug: non-topological
    /// traversal).
    pub fn net(&self, old: NetId) -> NetId {
        self.map[old.index()].expect("net used before being mapped")
    }

    /// Declares that `old` maps to `new` (aliasing; no gate emitted).
    pub fn alias(&mut self, old: NetId, new: NetId) {
        self.map[old.index()] = Some(new);
    }

    /// Copies `gate` verbatim (with remapped inputs) and maps its output.
    pub fn copy_gate(&mut self, src: &Netlist, gid: GateId) -> NetId {
        let g = src.gate(gid);
        let inputs: Vec<NetId> = g.inputs.iter().map(|&i| self.net(i)).collect();
        let new_out = self.out.add_gate_tagged(g.kind, &inputs, g.tags);
        self.alias(g.output, new_out);
        new_out
    }

    /// Mutable access to the netlist under construction.
    pub fn netlist_mut(&mut self) -> &mut Netlist {
        &mut self.out
    }

    /// Pre-creates a DFF for `gid` with a placeholder data input so that
    /// combinational logic reading the DFF output can be rebuilt first.
    /// Returns the new gate id; patch the input with
    /// [`Rebuilder::patch_dff`] after the combinational walk.
    pub fn predeclare_dff(&mut self, src: &Netlist, gid: GateId) -> GateId {
        let tmp = self.out.add_net();
        let out = self
            .out
            .add_gate_tagged(CellKind::Dff, &[tmp], src.gate(gid).tags);
        self.alias(src.gate(gid).output, out);
        self.out.net(out).driver.expect("dff has a driver")
    }

    /// Connects the real data input of a predeclared DFF.
    pub fn patch_dff(&mut self, src: &Netlist, old: GateId, new: GateId) {
        let d = self.net(src.gate(old).inputs[0]);
        self.out.gate_mut(new).inputs[0] = d;
    }

    /// Finishes the rebuild, copying primary outputs.
    pub fn finish(mut self, src: &Netlist) -> Netlist {
        for (net, name) in src.outputs() {
            let mapped = self.net(*net);
            self.out.mark_output(mapped, name.clone());
        }
        self.out
    }
}

/// Constant propagation and local simplification.
///
/// Folds constant inputs through every cell kind, collapses buffers, and
/// replaces fully-determined gates with constants. In
/// [`SynthesisMode::SecurityAware`] mode, protected gates (barriers, key
/// gates, monitors, redundancy) are copied untouched.
pub fn fold_constants(nl: &Netlist, mode: SynthesisMode) -> Netlist {
    let order = nl.topo_order().expect("cyclic netlist");
    let mut rb = Rebuilder::new(nl);
    let dff_pairs: Vec<(GateId, GateId)> = nl
        .dffs()
        .iter()
        .map(|&d| (d, rb.predeclare_dff(nl, d)))
        .collect();
    // constant knowledge about *new* nets
    let mut konst: HashMap<NetId, bool> = HashMap::new();
    let const_net = |rb: &mut Rebuilder, konst: &mut HashMap<NetId, bool>, v: bool| {
        let kind = if v {
            CellKind::Const1
        } else {
            CellKind::Const0
        };
        let n = rb.netlist_mut().add_gate(kind, &[]);
        konst.insert(n, v);
        n
    };
    let handle = |rb: &mut Rebuilder, konst: &mut HashMap<NetId, bool>, gid: GateId| {
        let g = nl.gate(gid);
        if mode == SynthesisMode::SecurityAware && g.tags.is_protected() {
            rb.copy_gate(nl, gid);
            return;
        }
        let ins: Vec<NetId> = g.inputs.iter().map(|&i| rb.net(i)).collect();
        let vals: Vec<Option<bool>> = ins.iter().map(|n| konst.get(n).copied()).collect();
        match g.kind {
            CellKind::Const0 => {
                let n = const_net(rb, konst, false);
                rb.alias(g.output, n);
            }
            CellKind::Const1 => {
                let n = const_net(rb, konst, true);
                rb.alias(g.output, n);
            }
            CellKind::Buf => match vals[0] {
                Some(v) => {
                    let n = const_net(rb, konst, v);
                    rb.alias(g.output, n);
                }
                None => rb.alias(g.output, ins[0]),
            },
            CellKind::Not => match vals[0] {
                Some(v) => {
                    let n = const_net(rb, konst, !v);
                    rb.alias(g.output, n);
                }
                None => {
                    let n = rb
                        .netlist_mut()
                        .add_gate_tagged(CellKind::Not, &[ins[0]], g.tags);
                    rb.alias(g.output, n);
                }
            },
            CellKind::And | CellKind::Nand | CellKind::Or | CellKind::Nor => {
                let neutral = matches!(g.kind, CellKind::And | CellKind::Nand); // AND neutral = 1
                let inverted = matches!(g.kind, CellKind::Nand | CellKind::Nor);
                // absorbing element present?
                let absorbing = vals.contains(&Some(!neutral));
                if absorbing {
                    let n = const_net(rb, konst, !neutral ^ inverted);
                    rb.alias(g.output, n);
                    return;
                }
                let live: Vec<NetId> = ins
                    .iter()
                    .zip(&vals)
                    .filter(|(_, v)| v.is_none())
                    .map(|(&n, _)| n)
                    .collect();
                match live.len() {
                    0 => {
                        let n = const_net(rb, konst, neutral ^ inverted);
                        rb.alias(g.output, n);
                    }
                    1 => {
                        if inverted {
                            let n =
                                rb.netlist_mut()
                                    .add_gate_tagged(CellKind::Not, &[live[0]], g.tags);
                            rb.alias(g.output, n);
                        } else {
                            rb.alias(g.output, live[0]);
                        }
                    }
                    _ => {
                        let base = match g.kind {
                            CellKind::Nand => CellKind::And,
                            CellKind::Nor => CellKind::Or,
                            k => k,
                        };
                        if live.len() == ins.len() {
                            rb.copy_gate(nl, gid);
                        } else {
                            let n = rb.netlist_mut().add_gate_tagged(base, &live, g.tags);
                            if inverted {
                                let ni =
                                    rb.netlist_mut()
                                        .add_gate_tagged(CellKind::Not, &[n], g.tags);
                                rb.alias(g.output, ni);
                            } else {
                                rb.alias(g.output, n);
                            }
                        }
                    }
                }
            }
            CellKind::Xor | CellKind::Xnor => {
                let mut parity = g.kind == CellKind::Xnor;
                let mut live: Vec<NetId> = Vec::new();
                for (n, v) in ins.iter().zip(&vals) {
                    match v {
                        Some(true) => parity = !parity,
                        Some(false) => {}
                        None => live.push(*n),
                    }
                }
                match live.len() {
                    0 => {
                        let n = const_net(rb, konst, parity);
                        rb.alias(g.output, n);
                    }
                    1 => {
                        if parity {
                            let n =
                                rb.netlist_mut()
                                    .add_gate_tagged(CellKind::Not, &[live[0]], g.tags);
                            rb.alias(g.output, n);
                        } else {
                            rb.alias(g.output, live[0]);
                        }
                    }
                    _ => {
                        let kind = if parity {
                            CellKind::Xnor
                        } else {
                            CellKind::Xor
                        };
                        let n = rb.netlist_mut().add_gate_tagged(kind, &live, g.tags);
                        rb.alias(g.output, n);
                    }
                }
            }
            CellKind::Mux => match vals[0] {
                Some(false) => rb.alias(g.output, ins[1]),
                Some(true) => rb.alias(g.output, ins[2]),
                None => {
                    if ins[1] == ins[2] {
                        rb.alias(g.output, ins[1]);
                    } else {
                        rb.copy_gate(nl, gid);
                    }
                }
            },
            CellKind::Dff => unreachable!("DFFs are not in the combinational order"),
        }
    };
    for gid in order {
        handle(&mut rb, &mut konst, gid);
    }
    for (old, new) in dff_pairs {
        rb.patch_dff(nl, old, new);
    }
    rb.finish(nl)
}

/// Structural common-subexpression elimination.
///
/// Merges gates with the same kind and the same (canonically ordered)
/// inputs. In [`SynthesisMode::SecurityAware`] mode, protected gates are
/// never merged — in particular, the duplicated logic of an FIA
/// countermeasure survives. In classical mode it does not: CSE *removes
/// redundancy by design*, which is the negative cross-effect between
/// optimization and fault-detection the paper warns about.
pub fn dedup(nl: &Netlist, mode: SynthesisMode) -> Netlist {
    let order = nl.topo_order().expect("cyclic netlist");
    let mut rb = Rebuilder::new(nl);
    let dff_pairs: Vec<(GateId, GateId)> = nl
        .dffs()
        .iter()
        .map(|&d| (d, rb.predeclare_dff(nl, d)))
        .collect();
    let mut table: HashMap<(CellKind, Vec<NetId>), NetId> = HashMap::new();
    for gid in order {
        let g = nl.gate(gid);
        let protected = g.tags.is_protected();
        if mode == SynthesisMode::SecurityAware && protected {
            rb.copy_gate(nl, gid);
            continue;
        }
        let mut key_inputs: Vec<NetId> = g.inputs.iter().map(|&i| rb.net(i)).collect();
        let commutative = matches!(
            g.kind,
            CellKind::And
                | CellKind::Nand
                | CellKind::Or
                | CellKind::Nor
                | CellKind::Xor
                | CellKind::Xnor
        );
        if commutative {
            key_inputs.sort_unstable();
        }
        let key = (g.kind, key_inputs);
        match table.get(&key) {
            Some(&existing) => rb.alias(g.output, existing),
            None => {
                let new_out = rb.copy_gate(nl, gid);
                table.insert(key, new_out);
            }
        }
    }
    for (old, new) in dff_pairs {
        rb.patch_dff(nl, old, new);
    }
    rb.finish(nl)
}

/// Removes logic that cannot reach any primary output.
///
/// In [`SynthesisMode::SecurityAware`] mode, gates tagged `monitor` are
/// kept even when unobservable (sensors often drive no functional
/// output); classical mode sweeps them away.
pub fn sweep(nl: &Netlist, mode: SynthesisMode) -> Netlist {
    let fanout = nl.fanout_map();
    let _ = fanout;
    // mark reachable nets backwards from outputs (and kept monitors)
    let mut live_net = vec![false; nl.num_nets()];
    let mut stack: Vec<NetId> = nl.outputs().iter().map(|&(n, _)| n).collect();
    if mode == SynthesisMode::SecurityAware {
        for g in nl.gates() {
            if g.tags.monitor {
                stack.push(g.output);
            }
        }
    }
    while let Some(n) = stack.pop() {
        if live_net[n.index()] {
            continue;
        }
        live_net[n.index()] = true;
        if let Some(drv) = nl.net(n).driver {
            for &inp in &nl.gate(drv).inputs {
                stack.push(inp);
            }
        }
    }
    let order = nl.topo_order().expect("cyclic netlist");
    let mut rb = Rebuilder::new(nl);
    let dff_pairs: Vec<(GateId, GateId)> = nl
        .dffs()
        .iter()
        .filter(|&&d| live_net[nl.gate(d).output.index()])
        .map(|&d| (d, rb.predeclare_dff(nl, d)))
        .collect();
    for gid in order {
        let g = nl.gate(gid);
        if live_net[g.output.index()] {
            rb.copy_gate(nl, gid);
        }
    }
    for (old, new) in dff_pairs {
        rb.patch_dff(nl, old, new);
    }
    rb.finish(nl)
}

/// The standard cleanup pipeline: constant folding → CSE → sweep.
pub fn optimize(nl: &Netlist, mode: SynthesisMode) -> Netlist {
    let mut sp = seceda_trace::span("synth.optimize");
    sp.attr("gates_before", nl.num_gates());
    sp.attr("security_aware", mode == SynthesisMode::SecurityAware);
    let folded = fold_constants(nl, mode);
    let merged = dedup(&folded, mode);
    let swept = sweep(&merged, mode);
    sp.attr("gates_after", swept.num_gates());
    seceda_trace::counter(
        "synth.rewrites_applied",
        (nl.num_gates().saturating_sub(swept.num_gates())) as u64,
    );
    swept
}

#[cfg(test)]
mod tests {
    use super::*;
    use seceda_netlist::{c17, majority, GateTags};

    fn assert_equivalent(a: &Netlist, b: &Netlist) {
        assert_eq!(a.truth_table(), b.truth_table(), "function changed");
    }

    #[test]
    fn fold_removes_constants() {
        let mut nl = Netlist::new("k");
        let a = nl.add_input("a");
        let one = nl.add_gate(CellKind::Const1, &[]);
        let zero = nl.add_gate(CellKind::Const0, &[]);
        let x = nl.add_gate(CellKind::And, &[a, one]); // = a
        let y = nl.add_gate(CellKind::Or, &[x, zero]); // = a
        let z = nl.add_gate(CellKind::Xor, &[y, one]); // = !a
        nl.mark_output(z, "z");
        let folded = optimize(&nl, SynthesisMode::Classical);
        assert_equivalent(&nl, &folded);
        // should be a single inverter
        assert_eq!(folded.num_gates(), 1);
        assert_eq!(folded.gates()[0].kind, CellKind::Not);
    }

    #[test]
    fn fold_handles_all_gate_kinds() {
        let mut nl = Netlist::new("k");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let one = nl.add_gate(CellKind::Const1, &[]);
        let zero = nl.add_gate(CellKind::Const0, &[]);
        let outs = [
            nl.add_gate(CellKind::Nand, &[a, one]),
            nl.add_gate(CellKind::Nor, &[a, zero]),
            nl.add_gate(CellKind::Xnor, &[a, one]),
            nl.add_gate(CellKind::Mux, &[one, a, b]),
            nl.add_gate(CellKind::Mux, &[zero, a, b]),
            nl.add_gate(CellKind::Mux, &[b, a, a]),
            nl.add_gate(CellKind::Not, &[zero]),
            nl.add_gate(CellKind::Buf, &[one]),
        ];
        for (i, &o) in outs.iter().enumerate() {
            nl.mark_output(o, format!("o{i}"));
        }
        let folded = fold_constants(&nl, SynthesisMode::Classical);
        assert_equivalent(&nl, &folded);
    }

    #[test]
    fn dedup_merges_identical_gates() {
        let mut nl = Netlist::new("d");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let x = nl.add_gate(CellKind::And, &[a, b]);
        let y = nl.add_gate(CellKind::And, &[b, a]); // commutative duplicate
        let z = nl.add_gate(CellKind::Xor, &[x, y]); // = 0 but dedup alone won't know
        nl.mark_output(z, "z");
        let merged = dedup(&nl, SynthesisMode::Classical);
        assert_equivalent(&nl, &merged);
        // the two ANDs collapse to one
        let ands = merged
            .gates()
            .iter()
            .filter(|g| g.kind == CellKind::And)
            .count();
        assert_eq!(ands, 1);
    }

    #[test]
    fn dedup_preserves_protected_redundancy() {
        let mut nl = Netlist::new("r");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let red = GateTags {
            redundancy: true,
            ..GateTags::default()
        };
        let x = nl.add_gate_tagged(CellKind::And, &[a, b], red);
        let y = nl.add_gate_tagged(CellKind::And, &[a, b], red);
        let cmp = nl.add_gate(CellKind::Xnor, &[x, y]);
        nl.mark_output(x, "x");
        nl.mark_output(cmp, "ok");
        let classical = dedup(&nl, SynthesisMode::Classical);
        let aware = dedup(&nl, SynthesisMode::SecurityAware);
        let count = |n: &Netlist| n.gates().iter().filter(|g| g.kind == CellKind::And).count();
        assert_eq!(count(&classical), 1, "classical CSE merges the redundancy");
        assert_eq!(count(&aware), 2, "security-aware CSE must keep both copies");
    }

    #[test]
    fn sweep_removes_dead_logic_but_keeps_monitors_in_aware_mode() {
        let mut nl = Netlist::new("s");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let live = nl.add_gate(CellKind::And, &[a, b]);
        let _dead = nl.add_gate(CellKind::Or, &[a, b]);
        let mon = GateTags {
            monitor: true,
            ..GateTags::default()
        };
        let _sensor = nl.add_gate_tagged(CellKind::Xor, &[a, b], mon);
        nl.mark_output(live, "y");
        let classical = sweep(&nl, SynthesisMode::Classical);
        assert_eq!(classical.num_gates(), 1);
        let aware = sweep(&nl, SynthesisMode::SecurityAware);
        assert_eq!(aware.num_gates(), 2);
        assert_equivalent(&nl, &classical);
    }

    #[test]
    fn optimize_preserves_benchmarks() {
        for nl in [c17(), majority()] {
            let opt = optimize(&nl, SynthesisMode::Classical);
            assert_equivalent(&nl, &opt);
            assert!(opt.num_gates() <= nl.num_gates());
            assert_eq!(opt.validate(), Ok(()));
        }
    }

    #[test]
    fn sequential_designs_survive_passes() {
        // toggle flop with some dead combinational logic
        let mut nl = Netlist::new("seq");
        let en = nl.add_input("en");
        let q_fb = nl.add_net();
        let nxt = nl.add_gate(CellKind::Xor, &[q_fb, en]);
        let q = nl.add_gate(CellKind::Dff, &[nxt]);
        let gid = nl.net(nxt).driver.expect("drv");
        nl.gate_mut(gid).inputs[0] = q;
        let _dead = nl.add_gate(CellKind::Not, &[en]);
        nl.mark_output(q, "q");
        let opt = optimize(&nl, SynthesisMode::Classical);
        assert_eq!(opt.dffs().len(), 1);
        assert_eq!(opt.validate(), Ok(()));
        // behaviour check over a few cycles
        let mut state_a = vec![false];
        let mut state_b = vec![false];
        for step in 0..6 {
            let en_val = step % 3 == 0;
            let (oa, sa) = nl.step(&[en_val], &state_a).expect("a");
            let (ob, sb) = opt.step(&[en_val], &state_b).expect("b");
            assert_eq!(oa, ob, "cycle {step}");
            state_a = sa;
            state_b = sb;
        }
    }
}
