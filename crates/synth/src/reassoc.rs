//! XOR-tree re-association and factoring — the paper's Fig. 2 in code.
//!
//! Flattens maximal XOR trees, factors AND leaves that share a literal
//! (`a·b1 ⊕ a·b2 ⊕ a·b3 → a·(b1 ⊕ b2 ⊕ b3)`), and rebuilds the remaining
//! tree balanced for timing. All three steps are *correct* (XOR is
//! associative and commutative, AND distributes over XOR) and *beneficial*
//! for PPA — and all three are catastrophic for a masking scheme whose
//! security rests on the evaluation order:
//!
//! * factoring materializes `b1 ⊕ b2 ⊕ b3` — for the ISW AND gadget that
//!   wire carries the *unmasked secret* `b`;
//! * rebalancing computes partial sums of product terms before mixing in
//!   the fresh randomness, so intermediate wires correlate with secrets.
//!
//! In [`SynthesisMode::SecurityAware`] the pass refuses to flatten
//! through or out of gates tagged `no_reassoc` (the "ordering barriers"
//! a masking-aware front end emits), leaving the gadget intact.

use crate::rewrite::sweep;
use crate::SynthesisMode;
use seceda_netlist::{CellKind, GateTags, NetId, Netlist};
use std::collections::BTreeMap;

/// What the re-association pass did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReassocReport {
    /// Number of XOR trees flattened and rebuilt.
    pub trees_rebuilt: usize,
    /// Number of factoring rewrites applied (each removes at least one
    /// AND gate).
    pub factorings: usize,
    /// Number of trees skipped because of `no_reassoc` barriers.
    pub trees_skipped: usize,
}

/// Runs XOR re-association + factoring over `nl` and returns the
/// optimized netlist together with a [`ReassocReport`].
///
/// Only 2-input XOR trees feeding single loads are rewritten; XNOR and
/// wide gates are left alone (run [`crate::decompose_to_two_input`]
/// first for full coverage).
///
/// # Panics
///
/// Panics if the netlist is cyclic.
pub fn reassociate(nl: &Netlist, mode: SynthesisMode) -> (Netlist, ReassocReport) {
    let mut sp = seceda_trace::span("synth.reassociate");
    sp.attr("gates", nl.num_gates());
    sp.attr("security_aware", mode == SynthesisMode::SecurityAware);
    let mut work = nl.clone();
    let mut report = ReassocReport::default();

    let fanout_count = |n: &Netlist| {
        let mut cnt = vec![0usize; n.num_nets()];
        for g in n.gates() {
            for &i in &g.inputs {
                cnt[i.index()] += 1;
            }
        }
        for &(o, _) in n.outputs() {
            cnt[o.index()] += 1;
        }
        cnt
    };
    let fanout = fanout_count(&work);
    // nets created during rewriting have no fanout entry; treat them as
    // `default` (conservative multi-fanout when flattening, single-use
    // when factoring freshly built gates)
    let fan_or = |fanout: &[usize], net: NetId, default: usize| -> usize {
        fanout.get(net.index()).copied().unwrap_or(default)
    };

    // identify XOR-tree roots: 2-input XOR gates whose output is NOT the
    // single input of another 2-input XOR (those are interior nodes)
    let is_xor2 = |n: &Netlist, net: NetId| -> bool {
        n.net(net)
            .driver
            .map(|g| n.gate(g).kind == CellKind::Xor && n.gate(g).inputs.len() == 2)
            .unwrap_or(false)
    };

    let mut roots: Vec<NetId> = Vec::new();
    for g in work.gates() {
        if g.kind != CellKind::Xor || g.inputs.len() != 2 {
            continue;
        }
        let out = g.output;
        // interior iff exactly one load and that load is a 2-input XOR
        let loads = fanout[out.index()];
        let single_xor_load = loads == 1
            && work
                .gates()
                .iter()
                .any(|h| h.kind == CellKind::Xor && h.inputs.len() == 2 && h.inputs.contains(&out))
            && !work.outputs().iter().any(|&(o, _)| o == out);
        if !single_xor_load {
            roots.push(out);
        }
    }

    for root in roots {
        // flatten: collect leaves, stopping at barriers / multi-fanout
        let mut leaves: Vec<NetId> = Vec::new();
        let mut barrier_hit = false;
        let mut tree_gates: Vec<NetId> = Vec::new();
        let mut stack = vec![(root, true)];
        while let Some((net, is_root)) = stack.pop() {
            let expandable =
                is_xor2(&work, net) && (is_root || fan_or(&fanout, net, usize::MAX) == 1);
            if expandable {
                let gid = work.net(net).driver.expect("xor driver");
                if work.gate(gid).tags.no_reassoc && mode == SynthesisMode::SecurityAware {
                    barrier_hit = true;
                    break;
                }
                tree_gates.push(net);
                let ins = work.gate(gid).inputs.to_vec();
                for i in ins {
                    stack.push((i, false));
                }
            } else {
                leaves.push(net);
            }
        }
        if barrier_hit {
            report.trees_skipped += 1;
            continue;
        }
        if tree_gates.len() < 2 {
            continue; // nothing to gain from a single gate
        }

        // cancel duplicate leaves pairwise (x ^ x = 0)
        leaves.sort_unstable();
        let mut cancelled: Vec<NetId> = Vec::new();
        let mut i = 0;
        while i < leaves.len() {
            if i + 1 < leaves.len() && leaves[i] == leaves[i + 1] {
                i += 2;
            } else {
                cancelled.push(leaves[i]);
                i += 1;
            }
        }
        let mut leaves = cancelled;

        // factoring: group single-load 2-input AND leaves by shared input
        loop {
            let mut groups: BTreeMap<NetId, Vec<usize>> = BTreeMap::new();
            for (li, &leaf) in leaves.iter().enumerate() {
                let Some(gid) = work.net(leaf).driver else {
                    continue;
                };
                let g = work.gate(gid);
                if g.kind != CellKind::And || g.inputs.len() != 2 || g.inputs[0] == g.inputs[1] {
                    continue;
                }
                if fan_or(&fanout, leaf, 1) != 1 {
                    continue;
                }
                if mode == SynthesisMode::SecurityAware && g.tags.is_protected() {
                    continue;
                }
                groups.entry(g.inputs[0]).or_default().push(li);
                groups.entry(g.inputs[1]).or_default().push(li);
            }
            let Some((&common, members)) = groups
                .iter()
                .filter(|(_, v)| v.len() >= 2)
                .max_by_key(|(_, v)| v.len())
            else {
                break;
            };
            let members = members.clone();
            // other-operand nets of each grouped AND
            let others: Vec<NetId> = members
                .iter()
                .map(|&li| {
                    let gid = work.net(leaves[li]).driver.expect("and driver");
                    let g = work.gate(gid);
                    if g.inputs[0] == common {
                        g.inputs[1]
                    } else {
                        g.inputs[0]
                    }
                })
                .collect();
            // build xor of the others, then AND with the common literal
            let xor_net = build_balanced_xor(&mut work, &others);
            let and_net = work.add_gate(CellKind::And, &[common, xor_net]);
            // drop grouped leaves, add the factored one
            let mut keep: Vec<NetId> = leaves
                .iter()
                .enumerate()
                .filter(|(li, _)| !members.contains(li))
                .map(|(_, &n)| n)
                .collect();
            keep.push(and_net);
            leaves = keep;
            report.factorings += 1;
        }

        // rebuild a balanced XOR over the final leaves
        let new_root = build_balanced_xor(&mut work, &leaves);
        work.replace_net_uses(root, new_root);
        report.trees_rebuilt += 1;
    }

    let cleaned = sweep(&work, mode);
    sp.attr("trees_rebuilt", report.trees_rebuilt);
    sp.attr("trees_skipped", report.trees_skipped);
    sp.attr("factorings", report.factorings);
    seceda_trace::counter("synth.xor_trees_rebuilt", report.trees_rebuilt as u64);
    seceda_trace::counter("synth.xor_trees_skipped", report.trees_skipped as u64);
    seceda_trace::counter("synth.rewrites_applied", report.factorings as u64);
    (cleaned, report)
}

/// Emits a balanced XOR tree over `leaves` (which must be non-empty) and
/// returns the root net.
fn build_balanced_xor(nl: &mut Netlist, leaves: &[NetId]) -> NetId {
    match leaves.len() {
        0 => nl.add_gate(CellKind::Const0, &[]),
        1 => leaves[0],
        _ => {
            let mut layer: Vec<NetId> = leaves.to_vec();
            while layer.len() > 1 {
                let mut next = Vec::with_capacity(layer.len().div_ceil(2));
                for pair in layer.chunks(2) {
                    if pair.len() == 2 {
                        next.push(nl.add_gate_tagged(
                            CellKind::Xor,
                            &[pair[0], pair[1]],
                            GateTags::default(),
                        ));
                    } else {
                        next.push(pair[0]);
                    }
                }
                layer = next;
            }
            layer[0]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seceda_netlist::parity_tree;

    /// Builds `y = a·b1 ⊕ a·b2 ⊕ a·b3` as a left-deep chain — the shape
    /// of the paper's example before optimization.
    fn shared_literal_chain() -> Netlist {
        let mut nl = Netlist::new("fig2_shape");
        let a = nl.add_input("a");
        let b1 = nl.add_input("b1");
        let b2 = nl.add_input("b2");
        let b3 = nl.add_input("b3");
        let p1 = nl.add_gate(CellKind::And, &[a, b1]);
        let p2 = nl.add_gate(CellKind::And, &[a, b2]);
        let p3 = nl.add_gate(CellKind::And, &[a, b3]);
        let t = nl.add_gate(CellKind::Xor, &[p1, p2]);
        let y = nl.add_gate(CellKind::Xor, &[t, p3]);
        nl.mark_output(y, "y");
        nl
    }

    #[test]
    fn factoring_reduces_and_count_and_preserves_function() {
        let nl = shared_literal_chain();
        let (opt, report) = reassociate(&nl, SynthesisMode::Classical);
        assert_eq!(nl.truth_table(), opt.truth_table());
        assert!(report.factorings >= 1, "report: {report:?}");
        let ands = |n: &Netlist| n.gates().iter().filter(|g| g.kind == CellKind::And).count();
        assert_eq!(ands(&nl), 3);
        assert_eq!(ands(&opt), 1, "three products share `a` and must factor");
    }

    #[test]
    fn factored_netlist_exposes_the_unmasked_sum() {
        // After factoring, some wire computes b1 ^ b2 ^ b3 — the secret.
        let nl = shared_literal_chain();
        let (opt, _) = reassociate(&nl, SynthesisMode::Classical);
        let mut found = false;
        'outer: for g in opt.gates() {
            // evaluate candidate wire over all inputs: is it b1^b2^b3?
            for pattern in 0..16u32 {
                let inputs: Vec<bool> = (0..4).map(|b| (pattern >> b) & 1 == 1).collect();
                let values = opt.eval_nets(&inputs, &[]).expect("eval");
                let expect = inputs[1] ^ inputs[2] ^ inputs[3];
                if values[g.output.index()] != expect {
                    continue 'outer;
                }
            }
            found = true;
            break;
        }
        assert!(found, "factoring must materialize the unmasked XOR sum");
    }

    #[test]
    fn barriers_block_the_rewrite_in_secure_mode() {
        let mut nl = Netlist::new("protected");
        let a = nl.add_input("a");
        let b1 = nl.add_input("b1");
        let b2 = nl.add_input("b2");
        let b3 = nl.add_input("b3");
        let bar = GateTags {
            no_reassoc: true,
            ..GateTags::default()
        };
        let p1 = nl.add_gate_tagged(CellKind::And, &[a, b1], bar);
        let p2 = nl.add_gate_tagged(CellKind::And, &[a, b2], bar);
        let p3 = nl.add_gate_tagged(CellKind::And, &[a, b3], bar);
        let t = nl.add_gate_tagged(CellKind::Xor, &[p1, p2], bar);
        let y = nl.add_gate_tagged(CellKind::Xor, &[t, p3], bar);
        nl.mark_output(y, "y");
        let (aware, report) = reassociate(&nl, SynthesisMode::SecurityAware);
        assert_eq!(report.trees_rebuilt, 0);
        assert_eq!(report.trees_skipped, 1);
        assert_eq!(aware.num_gates(), nl.num_gates(), "structure must survive");
        // classical mode tramples right over the barriers
        let (classical, creport) = reassociate(&nl, SynthesisMode::Classical);
        assert_eq!(creport.trees_rebuilt, 1);
        assert_eq!(nl.truth_table(), classical.truth_table());
    }

    #[test]
    fn parity_tree_is_stable() {
        // an already-balanced XOR tree keeps its function (and roughly
        // its size) through the pass
        let nl = parity_tree(8);
        let (opt, _) = reassociate(&nl, SynthesisMode::Classical);
        assert_eq!(nl.truth_table(), opt.truth_table());
        assert!(opt.num_gates() <= nl.num_gates() + 1);
    }

    #[test]
    fn duplicate_leaves_cancel() {
        // y = x ^ a ^ x should simplify to a
        let mut nl = Netlist::new("cancel");
        let a = nl.add_input("a");
        let x = nl.add_input("x");
        let t = nl.add_gate(CellKind::Xor, &[x, a]);
        let y = nl.add_gate(CellKind::Xor, &[t, x]);
        nl.mark_output(y, "y");
        let (opt, _) = reassociate(&nl, SynthesisMode::Classical);
        assert_eq!(nl.truth_table(), opt.truth_table());
        assert_eq!(opt.num_gates(), 0, "x ^ a ^ x is just a wire to a");
    }

    #[test]
    fn multi_fanout_interior_nodes_are_leaves() {
        // t = x1 ^ x2 feeds both the tree and another output: it must not
        // be flattened away
        let mut nl = Netlist::new("mf");
        let x1 = nl.add_input("x1");
        let x2 = nl.add_input("x2");
        let x3 = nl.add_input("x3");
        let t = nl.add_gate(CellKind::Xor, &[x1, x2]);
        let y = nl.add_gate(CellKind::Xor, &[t, x3]);
        nl.mark_output(t, "t");
        nl.mark_output(y, "y");
        let (opt, _) = reassociate(&nl, SynthesisMode::Classical);
        assert_eq!(nl.truth_table(), opt.truth_table());
    }
}
