//! # seceda-synth
//!
//! Logic synthesis for the `seceda` toolkit — and the crate that makes the
//! paper's central motivational example (Fig. 2) concrete.
//!
//! Classical synthesis is *security-unaware*: it freely re-associates XOR
//! trees, factors shared literals, and merges structurally identical
//! gates, because Boolean function and PPA are all it optimizes. Each of
//! those transformations can silently destroy a countermeasure:
//!
//! * [`reassociate`] — flattens XOR trees and factors common AND inputs
//!   (`a·b1 ⊕ a·b2 ⊕ a·b3 → a·(b1⊕b2⊕b3)`). On an ISW private-circuit
//!   gadget this materializes an unmasked secret on a wire, exactly the
//!   failure mode of Fig. 2. In [`SynthesisMode::SecurityAware`] mode the
//!   pass honors the `no_reassoc` barrier tags emitted by the masking
//!   transform and leaves protected trees intact.
//! * [`dedup`] — common-subexpression elimination. Security-unaware CSE
//!   merges the redundant copies inserted by fault-detection schemes,
//!   silently removing the protection (the composition cross-effect of
//!   Sec. IV).
//! * [`fold_constants`], [`sweep`] — standard cleanup, with the same
//!   tag-honoring discipline.
//! * [`decompose_to_two_input`], [`map_to_nand`] — technology mapping.
//! * [`wddl_transform`] — the WDDL dual-rail "hiding" countermeasure \[21\]
//!   applied during synthesis: every signal gets a complementary rail, so
//!   the switched capacitance per cycle is data-independent.
//!
//! [`optimize`] chains the cleanup passes into the flow entry point.

mod map;
mod reassoc;
mod rewrite;
mod wddl;

pub use map::{decompose_to_two_input, map_to_nand, map_to_xag};
pub use reassoc::{reassociate, ReassocReport};
pub use rewrite::{dedup, fold_constants, optimize, sweep};
pub use wddl::{wddl_transform, WddlNetlist};

/// Whether synthesis passes respect security tags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SynthesisMode {
    /// Classical behaviour: optimize for PPA only, ignore all security
    /// markers (Fig. 1 of the paper).
    #[default]
    Classical,
    /// Honor `GateTags`: never re-associate across barriers, never merge
    /// protected redundancy, never sweep monitors.
    SecurityAware,
}
