//! WDDL dual-rail transform — gate-level "hiding" at logic synthesis \[21\].
//!
//! Wave dynamic differential logic represents every signal `s` as a
//! complementary rail pair `(s_t, s_f)` with the invariant `s_f = !s_t`
//! during evaluation. Because exactly one rail of every pair is 1 at any
//! time, the Hamming weight of the dual-rail netlist is a constant
//! independent of the processed data — the information a Hamming-weight
//! side channel sees is gone.
//!
//! The transform uses only positive (monotone) gates so the precharge
//! wave can propagate in real WDDL: AND → (AND, OR), OR → (OR, AND),
//! inversion is a free rail swap, XOR is built from AND/OR on both rails.

use seceda_netlist::{CellKind, NetId, Netlist};
use std::collections::HashMap;

/// Result of the WDDL transform.
#[derive(Debug, Clone, PartialEq)]
pub struct WddlNetlist {
    /// The dual-rail netlist. For every original input `x` it has inputs
    /// `x_t`, `x_f` (in that order); outputs likewise duplicated.
    pub netlist: Netlist,
    /// Pairs `(true_rail, false_rail)` for every original net that was
    /// converted, keyed by the original net index.
    pub rails: HashMap<usize, (NetId, NetId)>,
}

impl WddlNetlist {
    /// Expands a single-rail input vector to the dual-rail convention.
    pub fn expand_inputs(inputs: &[bool]) -> Vec<bool> {
        let mut out = Vec::with_capacity(inputs.len() * 2);
        for &b in inputs {
            out.push(b);
            out.push(!b);
        }
        out
    }

    /// Collapses dual-rail outputs back to single-rail values (taking the
    /// true rails).
    pub fn collapse_outputs(outputs: &[bool]) -> Vec<bool> {
        outputs.iter().step_by(2).copied().collect()
    }
}

/// Applies the WDDL dual-rail transform to a combinational netlist.
///
/// # Panics
///
/// Panics if the netlist is sequential or cyclic (WDDL registers need a
/// precharge protocol this model does not implement).
pub fn wddl_transform(nl: &Netlist) -> WddlNetlist {
    assert!(
        nl.is_combinational(),
        "wddl_transform supports combinational netlists only"
    );
    let order = nl.topo_order().expect("cyclic netlist");
    let mut out = Netlist::new(format!("{}_wddl", nl.name()));
    let mut rails: HashMap<usize, (NetId, NetId)> = HashMap::new();

    for &pi in nl.inputs() {
        let name = nl.net_label(pi);
        let t = out.add_input(format!("{name}_t"));
        let f = out.add_input(format!("{name}_f"));
        rails.insert(pi.index(), (t, f));
    }

    for gid in order {
        let g = nl.gate(gid);
        let ins: Vec<(NetId, NetId)> = g
            .inputs
            .iter()
            .map(|&i| *rails.get(&i.index()).expect("input rails known"))
            .collect();
        let pair = match g.kind {
            CellKind::Const0 => {
                let t = out.add_gate(CellKind::Const0, &[]);
                let f = out.add_gate(CellKind::Const1, &[]);
                (t, f)
            }
            CellKind::Const1 => {
                let t = out.add_gate(CellKind::Const1, &[]);
                let f = out.add_gate(CellKind::Const0, &[]);
                (t, f)
            }
            CellKind::Buf => ins[0],
            CellKind::Not => (ins[0].1, ins[0].0), // free rail swap
            CellKind::And | CellKind::Nand => {
                let ts: Vec<NetId> = ins.iter().map(|p| p.0).collect();
                let fs: Vec<NetId> = ins.iter().map(|p| p.1).collect();
                let t = out.add_gate(CellKind::And, &ts);
                let f = out.add_gate(CellKind::Or, &fs);
                if g.kind == CellKind::Nand {
                    (f, t)
                } else {
                    (t, f)
                }
            }
            CellKind::Or | CellKind::Nor => {
                let ts: Vec<NetId> = ins.iter().map(|p| p.0).collect();
                let fs: Vec<NetId> = ins.iter().map(|p| p.1).collect();
                let t = out.add_gate(CellKind::Or, &ts);
                let f = out.add_gate(CellKind::And, &fs);
                if g.kind == CellKind::Nor {
                    (f, t)
                } else {
                    (t, f)
                }
            }
            CellKind::Xor | CellKind::Xnor => {
                // fold pairwise: xor_t = at·bf + af·bt ; xor_f = at·bt + af·bf
                let mut acc = ins[0];
                for &(bt, bf) in &ins[1..] {
                    let (at, af) = acc;
                    let t1 = out.add_gate(CellKind::And, &[at, bf]);
                    let t2 = out.add_gate(CellKind::And, &[af, bt]);
                    let t = out.add_gate(CellKind::Or, &[t1, t2]);
                    let f1 = out.add_gate(CellKind::And, &[at, bt]);
                    let f2 = out.add_gate(CellKind::And, &[af, bf]);
                    let f = out.add_gate(CellKind::Or, &[f1, f2]);
                    acc = (t, f);
                }
                if g.kind == CellKind::Xnor {
                    (acc.1, acc.0)
                } else {
                    acc
                }
            }
            CellKind::Mux => {
                // y = s·b + !s·a, dual rail with monotone gates
                let (st, sf) = ins[0];
                let (at, af) = ins[1];
                let (bt, bf) = ins[2];
                let t1 = out.add_gate(CellKind::And, &[st, bt]);
                let t2 = out.add_gate(CellKind::And, &[sf, at]);
                let t = out.add_gate(CellKind::Or, &[t1, t2]);
                let f1 = out.add_gate(CellKind::And, &[st, bf]);
                let f2 = out.add_gate(CellKind::And, &[sf, af]);
                let f = out.add_gate(CellKind::Or, &[f1, f2]);
                (t, f)
            }
            CellKind::Dff => unreachable!("combinational only"),
        };
        rails.insert(g.output.index(), pair);
    }

    for (net, name) in nl.outputs() {
        let (t, f) = *rails.get(&net.index()).expect("output rails known");
        out.mark_output(t, format!("{name}_t"));
        out.mark_output(f, format!("{name}_f"));
    }

    WddlNetlist {
        netlist: out,
        rails,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seceda_netlist::{c17, majority, parity_tree};

    fn check_wddl(nl: &Netlist) {
        let wddl = wddl_transform(nl);
        let n = nl.inputs().len();
        let mut hw_values = Vec::new();
        for pattern in 0..(1u32 << n) {
            let inputs: Vec<bool> = (0..n).map(|b| (pattern >> b) & 1 == 1).collect();
            let expect = nl.evaluate(&inputs);
            let dual_in = WddlNetlist::expand_inputs(&inputs);
            let dual_out = wddl.netlist.evaluate(&dual_in);
            assert_eq!(
                WddlNetlist::collapse_outputs(&dual_out),
                expect,
                "function must survive the transform"
            );
            // complementarity of every rail pair
            let values = wddl.netlist.eval_nets(&dual_in, &[]).expect("eval");
            let mut hw = 0usize;
            for (&orig, &(t, f)) in &wddl.rails {
                let _ = orig;
                assert_ne!(values[t.index()], values[f.index()], "rails must differ");
                hw += values[t.index()] as usize + values[f.index()] as usize;
            }
            hw_values.push(hw);
        }
        // hiding property: constant Hamming weight across all inputs
        assert!(
            hw_values.windows(2).all(|w| w[0] == w[1]),
            "dual-rail HW must be data-independent: {hw_values:?}"
        );
    }

    #[test]
    fn wddl_on_c17() {
        check_wddl(&c17());
    }

    #[test]
    fn wddl_on_majority() {
        check_wddl(&majority());
    }

    #[test]
    fn wddl_on_parity() {
        check_wddl(&parity_tree(4));
    }

    #[test]
    fn wddl_handles_mux_and_constants() {
        let mut nl = Netlist::new("mc");
        let s = nl.add_input("s");
        let a = nl.add_input("a");
        let one = nl.add_gate(CellKind::Const1, &[]);
        let m = nl.add_gate(CellKind::Mux, &[s, a, one]);
        let n = nl.add_gate(CellKind::Not, &[m]);
        nl.mark_output(n, "y");
        check_wddl(&nl);
    }

    #[test]
    #[should_panic(expected = "combinational")]
    fn sequential_rejected() {
        let mut nl = Netlist::new("seq");
        let a = nl.add_input("a");
        let q = nl.add_gate(CellKind::Dff, &[a]);
        nl.mark_output(q, "q");
        wddl_transform(&nl);
    }
}
