//! Property-based tests for fault countermeasures.

use seceda_fia::{duplicate_with_compare, parity_protect, triplicate_with_vote};
use seceda_netlist::{random_circuit, RandomCircuitConfig};
use seceda_sim::{Fault, FaultSim};
use seceda_testkit::prelude::*;

fn host(seed: u64, gates: usize) -> seceda_netlist::Netlist {
    random_circuit(&RandomCircuitConfig {
        num_inputs: 4,
        num_gates: gates,
        num_outputs: 3,
        with_xor: false,
        seed,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn dwc_never_suffers_silent_corruption_from_single_gate_faults(
        seed in 0u64..3000,
        gates in 3usize..25,
        victim_sel in any::<usize>(),
        input_bits in 0u32..16,
    ) {
        let nl = host(seed, gates);
        let p = duplicate_with_compare(&nl);
        let sim = FaultSim::new(&p.netlist).expect("sim");
        let victim = p.netlist.gates()[victim_sel % p.netlist.num_gates()].output;
        let inputs: Vec<bool> = (0..4).map(|b| (input_bits >> b) & 1 == 1).collect();
        let good = sim.outputs(&sim.eval_with_faults(&inputs, &[]));
        let bad = sim.outputs(&sim.eval_with_faults(&inputs, &[Fault::flip(victim)]));
        let n = good.len() - 1; // last output is the alarm
        let corrupted = good[..n] != bad[..n];
        let alarm = bad[n];
        prop_assert!(!corrupted || alarm, "silent corruption at {victim}");
    }

    #[test]
    fn tmr_masks_faults_in_any_copy(
        seed in 0u64..3000,
        gates in 3usize..20,
        victim_sel in any::<usize>(),
        input_bits in 0u32..16,
    ) {
        let nl = host(seed, gates);
        let original_gates = nl.num_gates();
        let p = triplicate_with_vote(&nl);
        let sim = FaultSim::new(&p.netlist).expect("sim");
        // only target copy gates (the first 3 * original_gates gates)
        let victim = p.netlist.gates()[victim_sel % (3 * original_gates)].output;
        let inputs: Vec<bool> = (0..4).map(|b| (input_bits >> b) & 1 == 1).collect();
        let expect = nl.evaluate(&inputs);
        let got = sim.outputs(&sim.eval_with_faults(&inputs, &[Fault::flip(victim)]));
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn parity_detects_faults_in_single_output_cones(
        seed in 0u64..3000,
        gates in 3usize..20,
        input_bits in 0u32..16,
    ) {
        // faults in the *predictor* cone never corrupt functional outputs
        let nl = host(seed, gates);
        let p = parity_protect(&nl);
        let sim = FaultSim::new(&p.netlist).expect("sim");
        let functional_gates = nl.num_gates();
        let predictor_victim = p.netlist.gates()[functional_gates].output;
        let inputs: Vec<bool> = (0..4).map(|b| (input_bits >> b) & 1 == 1).collect();
        let good = sim.outputs(&sim.eval_with_faults(&inputs, &[]));
        let bad = sim.outputs(&sim.eval_with_faults(&inputs, &[Fault::flip(predictor_victim)]));
        let n = good.len() - 1;
        prop_assert_eq!(&good[..n], &bad[..n], "predictor faults are function-transparent");
    }

    #[test]
    fn protected_netlists_preserve_function(
        seed in 0u64..3000,
        gates in 3usize..20,
        input_bits in 0u32..16,
    ) {
        let nl = host(seed, gates);
        let inputs: Vec<bool> = (0..4).map(|b| (input_bits >> b) & 1 == 1).collect();
        let expect = nl.evaluate(&inputs);
        for p in [
            duplicate_with_compare(&nl),
            triplicate_with_vote(&nl),
            parity_protect(&nl),
        ] {
            let outs = p.netlist.evaluate(&inputs);
            let n = match p.alarm_index {
                Some(_) => outs.len() - 1,
                None => outs.len(),
            };
            prop_assert_eq!(&outs[..n], &expect[..]);
            if p.alarm_index.is_some() {
                prop_assert!(!outs[n], "no fault, no alarm");
            }
        }
    }
}
