//! Natural vs. malicious fault discrimination (Sec. III-F).
//!
//! The paper argues a security-aware DFX infrastructure must *respond
//! differently* to natural faults (recover and resume) and tampering
//! attempts (re-key or halt), and that telling them apart is non-trivial
//! \[59\]. This module implements the statistical discriminator: natural
//! single-event upsets strike uniformly at random locations and times,
//! while an attacker repeatedly targets the same sensitive spot.

use std::collections::HashMap;

/// Verdict over an observed sequence of fault events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultVerdict {
    /// Consistent with natural, uniformly distributed upsets → recover
    /// and resume operation.
    Natural,
    /// Spatially/temporally clustered → treat as an attack: re-key or
    /// discontinue service.
    Malicious,
    /// Not enough events to decide.
    Undecided,
}

/// Sliding-window fault discriminator.
///
/// Records `(location, cycle)` fault events and classifies the recent
/// window: if one location accounts for more than `cluster_fraction` of
/// events, or the event *rate* exceeds `max_rate_per_cycle` (faults per
/// cycle), the verdict is [`FaultVerdict::Malicious`].
///
/// # Example
///
/// ```
/// use seceda_fia::{FaultDiscriminator, FaultVerdict};
///
/// let mut d = FaultDiscriminator::new(8, 0.5, 0.01);
/// for cycle in 0..8 {
///     d.record(42, cycle * 1000); // same spot, again and again
/// }
/// assert_eq!(d.verdict(), FaultVerdict::Malicious);
/// ```
#[derive(Debug, Clone)]
pub struct FaultDiscriminator {
    window: usize,
    cluster_fraction: f64,
    max_rate_per_cycle: f64,
    events: Vec<(usize, u64)>,
}

impl FaultDiscriminator {
    /// Creates a discriminator.
    ///
    /// # Panics
    ///
    /// Panics if `window < 2` or the fractions are out of range.
    pub fn new(window: usize, cluster_fraction: f64, max_rate_per_cycle: f64) -> Self {
        assert!(window >= 2, "window too small");
        assert!(
            (0.0..=1.0).contains(&cluster_fraction),
            "cluster fraction must be in [0, 1]"
        );
        assert!(max_rate_per_cycle > 0.0, "rate bound must be positive");
        FaultDiscriminator {
            window,
            cluster_fraction,
            max_rate_per_cycle,
            events: Vec::new(),
        }
    }

    /// Records a fault event at `location` (e.g. a net or sensor index)
    /// during `cycle`.
    pub fn record(&mut self, location: usize, cycle: u64) {
        self.events.push((location, cycle));
        if self.events.len() > self.window {
            self.events.remove(0);
        }
    }

    /// Number of events currently in the window.
    pub fn num_events(&self) -> usize {
        self.events.len()
    }

    /// Classifies the current window.
    pub fn verdict(&self) -> FaultVerdict {
        if self.events.len() < self.window {
            return FaultVerdict::Undecided;
        }
        // spatial clustering
        let mut counts: HashMap<usize, usize> = HashMap::new();
        for &(loc, _) in &self.events {
            *counts.entry(loc).or_insert(0) += 1;
        }
        let max_count = counts.values().copied().max().unwrap_or(0);
        if (max_count as f64) / (self.events.len() as f64) > self.cluster_fraction {
            return FaultVerdict::Malicious;
        }
        // temporal rate
        let first = self.events.first().map(|&(_, c)| c).unwrap_or(0);
        let last = self.events.last().map(|&(_, c)| c).unwrap_or(0);
        let span = last.saturating_sub(first).max(1);
        if self.events.len() as f64 / span as f64 > self.max_rate_per_cycle {
            return FaultVerdict::Malicious;
        }
        FaultVerdict::Natural
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seceda_testkit::rng::{Rng, SeedableRng, StdRng};

    #[test]
    fn repeated_location_is_malicious() {
        let mut d = FaultDiscriminator::new(10, 0.5, 0.001);
        for i in 0..10 {
            d.record(7, i * 100_000);
        }
        assert_eq!(d.verdict(), FaultVerdict::Malicious);
    }

    #[test]
    fn burst_rate_is_malicious() {
        let mut d = FaultDiscriminator::new(10, 0.9, 0.001);
        for i in 0..10u64 {
            d.record(i as usize, 1000 + i); // 10 faults in 10 cycles
        }
        assert_eq!(d.verdict(), FaultVerdict::Malicious);
    }

    #[test]
    fn sparse_uniform_faults_are_natural() {
        let mut rng = StdRng::seed_from_u64(17);
        let mut d = FaultDiscriminator::new(10, 0.5, 0.001);
        let mut cycle = 0u64;
        for _ in 0..10 {
            cycle += rng.gen_range(50_000..150_000u64);
            d.record(rng.gen_range(0..10_000), cycle);
        }
        assert_eq!(d.verdict(), FaultVerdict::Natural);
    }

    #[test]
    fn undecided_until_window_full() {
        let mut d = FaultDiscriminator::new(5, 0.5, 0.001);
        for i in 0..4 {
            d.record(i, i as u64 * 100_000);
            assert_eq!(d.verdict(), FaultVerdict::Undecided);
        }
        d.record(4, 500_000);
        assert_ne!(d.verdict(), FaultVerdict::Undecided);
    }

    #[test]
    fn window_slides() {
        let mut d = FaultDiscriminator::new(4, 0.6, 0.001);
        // old benign events scroll out; recent hammering dominates
        for i in 0..4 {
            d.record(i, i as u64 * 100_000);
        }
        assert_eq!(d.verdict(), FaultVerdict::Natural);
        for i in 0..4 {
            d.record(99, 1_000_000 + i * 200_000);
        }
        assert_eq!(d.verdict(), FaultVerdict::Malicious);
        assert_eq!(d.num_events(), 4);
    }

    #[test]
    #[should_panic(expected = "window too small")]
    fn tiny_window_rejected() {
        let _ = FaultDiscriminator::new(1, 0.5, 0.1);
    }
}
