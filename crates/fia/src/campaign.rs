//! Fault campaigns: which faults an adversary (or nature) injects.
//!
//! The physical means the paper lists — laser pulses \[6\], EM pulses \[7\],
//! clock/voltage glitches — are abstracted as distributions over
//! [`Fault`]s: a laser hits a spatially contiguous group of nets, a
//! clock glitch upsets timing-critical nets, radiation hits uniformly at
//! random. The `seceda-layout` crate maps spatial regions to nets; here
//! regions are expressed as net-index windows.

use seceda_netlist::{NetId, Netlist};
use seceda_sim::{Fault, FaultKind};
use seceda_testkit::rng::{Rng, SeedableRng, StdRng};

/// How faults are generated.
#[derive(Debug, Clone, PartialEq)]
pub enum InjectionModel {
    /// Laser-like: a contiguous window of `width` nets starting at a
    /// random position; all nets in the window flip.
    Laser {
        /// Number of adjacent nets upset per shot.
        width: usize,
    },
    /// Clock-glitch-like: the `count` nets with the deepest logic are
    /// upset (longest paths miss timing first).
    ClockGlitch {
        /// Number of deepest nets to upset.
        count: usize,
    },
    /// Uniform single-event upsets (natural radiation): one random net
    /// per shot (primary inputs included).
    Random,
    /// Like [`InjectionModel::Random`] but restricted to gate outputs —
    /// upsets inside the logic, never on the shared input wires (which
    /// are a common-mode blind spot of duplication schemes).
    RandomGate,
    /// Targeted: the adversary aims at exactly these nets (the paper's
    /// "unlikely but possible" strategic attacker of Sec. IV).
    Targeted(Vec<NetId>),
}

/// A campaign: an injection model applied for a number of shots.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultCampaign {
    /// The injection mechanism.
    pub model: InjectionModel,
    /// Number of shots (independent injections).
    pub shots: usize,
    /// RNG seed.
    pub seed: u64,
}

impl FaultCampaign {
    /// Generates the fault set of every shot: `result[s]` holds the
    /// simultaneous faults of shot `s`.
    pub fn generate(&self, nl: &Netlist) -> Vec<Vec<Fault>> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let num_nets = nl.num_nets();
        match &self.model {
            InjectionModel::Laser { width } => (0..self.shots)
                .map(|_| {
                    let start = rng.gen_range(0..num_nets.saturating_sub(*width).max(1));
                    (start..(start + width).min(num_nets))
                        .map(|i| Fault {
                            net: NetId::from_index(i),
                            kind: FaultKind::BitFlip,
                        })
                        .collect()
                })
                .collect(),
            InjectionModel::ClockGlitch { count } => {
                // rank nets by logic depth (levels)
                let order = nl.topo_order().expect("cyclic netlist");
                let mut level = vec![0usize; num_nets];
                for gid in order {
                    let g = nl.gate(gid);
                    let lv = g
                        .inputs
                        .iter()
                        .map(|&i| level[i.index()])
                        .max()
                        .unwrap_or(0);
                    level[g.output.index()] = lv + 1;
                }
                let mut ranked: Vec<usize> = (0..num_nets).collect();
                ranked.sort_by_key(|&i| std::cmp::Reverse(level[i]));
                let victims: Vec<Fault> = ranked
                    .into_iter()
                    .take(*count)
                    .map(|i| Fault {
                        net: NetId::from_index(i),
                        kind: FaultKind::BitFlip,
                    })
                    .collect();
                // every glitch shot upsets the same deepest nets
                (0..self.shots).map(|_| victims.clone()).collect()
            }
            InjectionModel::Random => (0..self.shots)
                .map(|_| {
                    vec![Fault {
                        net: NetId::from_index(rng.gen_range(0..num_nets)),
                        kind: FaultKind::BitFlip,
                    }]
                })
                .collect(),
            InjectionModel::RandomGate => {
                let gate_nets: Vec<NetId> = nl.gates().iter().map(|g| g.output).collect();
                (0..self.shots)
                    .map(|_| {
                        vec![Fault {
                            net: gate_nets[rng.gen_range(0..gate_nets.len())],
                            kind: FaultKind::BitFlip,
                        }]
                    })
                    .collect()
            }
            InjectionModel::Targeted(nets) => (0..self.shots)
                .map(|_| {
                    nets.iter()
                        .map(|&n| Fault {
                            net: n,
                            kind: FaultKind::BitFlip,
                        })
                        .collect()
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seceda_netlist::c17;

    #[test]
    fn laser_shots_are_contiguous() {
        let nl = c17();
        let campaign = FaultCampaign {
            model: InjectionModel::Laser { width: 3 },
            shots: 10,
            seed: 5,
        };
        for shot in campaign.generate(&nl) {
            assert!(shot.len() <= 3 && !shot.is_empty());
            let idx: Vec<usize> = shot.iter().map(|f| f.net.index()).collect();
            assert!(idx.windows(2).all(|w| w[1] == w[0] + 1));
        }
    }

    #[test]
    fn clock_glitch_hits_deepest_nets() {
        let nl = c17();
        let campaign = FaultCampaign {
            model: InjectionModel::ClockGlitch { count: 2 },
            shots: 3,
            seed: 1,
        };
        let shots = campaign.generate(&nl);
        assert_eq!(shots.len(), 3);
        // the deepest nets in c17 are the output NANDs (level 3)
        let outputs: Vec<usize> = nl.outputs().iter().map(|&(n, _)| n.index()).collect();
        for shot in &shots {
            for f in shot {
                assert!(outputs.contains(&f.net.index()), "hit {:?}", f.net);
            }
        }
    }

    #[test]
    fn random_shots_single_fault() {
        let nl = c17();
        let campaign = FaultCampaign {
            model: InjectionModel::Random,
            shots: 20,
            seed: 2,
        };
        let shots = campaign.generate(&nl);
        assert!(shots.iter().all(|s| s.len() == 1));
        // determinism
        assert_eq!(shots, campaign.generate(&nl));
    }

    #[test]
    fn targeted_hits_exactly() {
        let nl = c17();
        let target = nl.outputs()[0].0;
        let campaign = FaultCampaign {
            model: InjectionModel::Targeted(vec![target]),
            shots: 2,
            seed: 3,
        };
        for shot in campaign.generate(&nl) {
            assert_eq!(shot.len(), 1);
            assert_eq!(shot[0].net, target);
        }
    }
}
