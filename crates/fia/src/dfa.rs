//! Differential fault analysis (DFA) on the toy SPN cipher.
//!
//! The adversary obtains pairs of (correct, faulty) ciphertexts for the
//! same plaintext, where the fault is a single-bit flip injected right
//! before the last S-box layer. Each pair constrains the last round key;
//! intersecting the candidate sets over a few pairs pins it down — this
//! is the attack that motivates the detection/infection countermeasures
//! of [`crate::codes`].

use seceda_cipher::{ToyCipher, TOY_PERM, TOY_ROUNDS, TOY_SBOX};

/// Result of a DFA key recovery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DfaResult {
    /// Master keys consistent with all provided pairs.
    pub candidates: Vec<u16>,
    /// Number of (correct, faulty) pairs consumed.
    pub pairs_used: usize,
}

impl DfaResult {
    /// `true` when exactly one key survives.
    pub fn unique(&self) -> bool {
        self.candidates.len() == 1
    }
}

fn inv_sbox() -> [u8; 16] {
    let mut inv = [0u8; 16];
    for (i, &v) in TOY_SBOX.iter().enumerate() {
        inv[v as usize] = i as u8;
    }
    inv
}

fn inv_permute(x: u16) -> u16 {
    // TOY_PERM maps output bit i <- input bit TOY_PERM[i]; invert it
    let mut y = 0u16;
    for (i, &src) in TOY_PERM.iter().enumerate() {
        y |= ((x >> i) & 1) << src;
    }
    y
}

fn inv_sub(x: u16, inv: &[u8; 16]) -> u16 {
    let mut y = 0u16;
    for n in 0..4 {
        let nib = (x >> (4 * n)) & 0xF;
        y |= (inv[nib as usize] as u16) << (4 * n);
    }
    y
}

/// Runs DFA: each pair is `(correct_ct, faulty_ct)` where the faulty run
/// had a single-bit flip injected before the last round's S-box layer.
/// Returns all master keys consistent with every pair.
///
/// The attack inverts the last round under each last-round-key candidate
/// and keeps those for which the pair's difference collapses to a single
/// bit at the fault location — the classical DFA filtering step. With
/// the toy cipher's rotational key schedule, the master key follows
/// directly from the last round key.
pub fn dfa_attack(pairs: &[(u16, u16)]) -> DfaResult {
    let inv = inv_sbox();
    let mut candidates: Vec<u16> = Vec::new();
    for k_last in 0..=u16::MAX {
        let consistent = pairs.iter().all(|&(ct, ct_f)| {
            // undo final whitening and the last round's P-layer + S-box
            let s_good = inv_sub(inv_permute(ct ^ k_last), &inv);
            let s_bad = inv_sub(inv_permute(ct_f ^ k_last), &inv);
            let delta = s_good ^ s_bad;
            delta.count_ones() == 1
        });
        if consistent {
            // master key = last round key rotated back
            candidates.push(k_last.rotate_right(TOY_ROUNDS as u32));
        }
        if k_last == u16::MAX {
            break;
        }
    }
    DfaResult {
        candidates,
        pairs_used: pairs.len(),
    }
}

/// Convenience: collects `n` DFA pairs from a cipher instance by
/// injecting single-bit faults before the last S-box layer.
pub fn collect_pairs(cipher: &ToyCipher, plaintexts: &[u16]) -> Vec<(u16, u16)> {
    plaintexts
        .iter()
        .enumerate()
        .map(|(i, &pt)| {
            let good = cipher.encrypt(pt);
            let bad = cipher.encrypt_with_fault(pt, TOY_ROUNDS - 1, i % 16);
            (good, bad)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inverse_helpers_roundtrip() {
        let inv = inv_sbox();
        for x in 0..16u8 {
            assert_eq!(inv[TOY_SBOX[x as usize] as usize], x);
        }
        for v in [0u16, 0xFFFF, 0xA5C3, 0x0001, 0x8000] {
            let p = {
                let mut y = 0u16;
                for (i, &src) in TOY_PERM.iter().enumerate() {
                    y |= ((v >> src) & 1) << i;
                }
                y
            };
            assert_eq!(inv_permute(p), v);
        }
    }

    #[test]
    fn dfa_recovers_the_key() {
        // fault positions must cover every nibble: a fault in nibble n
        // only constrains the key bits feeding that nibble
        let key = 0xC0DE;
        let cipher = ToyCipher::new(key);
        let pts: Vec<u16> = (0..16)
            .map(|i| 0x1111u16.wrapping_mul(i + 3) ^ (i << 7))
            .collect();
        let pairs = collect_pairs(&cipher, &pts);
        let result = dfa_attack(&pairs);
        assert!(
            result.candidates.contains(&key),
            "true key must survive: {:04x?}",
            result.candidates
        );
        assert!(
            result.candidates.len() <= 2,
            "faults covering all nibbles should pin the key down: {} left",
            result.candidates.len()
        );
    }

    #[test]
    fn partial_fault_coverage_leaves_unconstrained_nibbles() {
        // faults only in nibble 0 (bits 0..4) leave the other key nibbles
        // free: at least 2^12 candidates survive
        let key = 0x1337;
        let cipher = ToyCipher::new(key);
        let pairs: Vec<(u16, u16)> = (0..6u16)
            .map(|i| {
                let pt = 0x0505u16.wrapping_mul(i + 1);
                (
                    cipher.encrypt(pt),
                    cipher.encrypt_with_fault(pt, TOY_ROUNDS - 1, (i % 4) as usize),
                )
            })
            .collect();
        let result = dfa_attack(&pairs);
        assert!(result.candidates.contains(&key));
        assert!(
            result.candidates.len() >= (1 << 12),
            "unfaulted nibbles stay free: {} candidates",
            result.candidates.len()
        );
    }

    #[test]
    fn single_pair_leaves_many_candidates() {
        let cipher = ToyCipher::new(0xBEEF);
        let pairs = collect_pairs(&cipher, &[0x1234]);
        let one = dfa_attack(&pairs);
        let pairs4 = collect_pairs(&cipher, &[0x1234, 0x9876, 0x0F0F, 0x3C3C]);
        let four = dfa_attack(&pairs4);
        assert!(
            one.candidates.len() > four.candidates.len(),
            "more pairs must shrink the candidate set ({} vs {})",
            one.candidates.len(),
            four.candidates.len()
        );
        assert!(four.candidates.contains(&0xBEEF));
    }

    #[test]
    fn infection_breaks_dfa() {
        // with the infective countermeasure the faulty "ciphertext" is
        // scrambled; the filtering condition then rejects the true key
        // as often as any other, leaving a candidate set that does not
        // single out the key
        let key = 0x5EED;
        let cipher = ToyCipher::new(key);
        let pts: Vec<u16> = (0..8).map(|i| 0x2222u16.wrapping_mul(i + 1)).collect();
        let pairs: Vec<(u16, u16)> = pts
            .iter()
            .enumerate()
            .map(|(i, &pt)| {
                let good = cipher.encrypt(pt);
                // infected output: pseudo-random junk instead of the
                // faulty ciphertext
                let junk = good.rotate_left((i % 7) as u32 + 1).wrapping_mul(0x9E37) ^ 0xA5A5;
                (good, junk)
            })
            .collect();
        let result = dfa_attack(&pairs);
        assert!(
            !result.unique() || result.candidates[0] != key,
            "infection must deny the adversary a unique correct key"
        );
    }
}
