//! Automatic fault analysis: grade a fault campaign against a
//! (possibly protected) netlist.

use crate::campaign::FaultCampaign;
use crate::codes::ProtectedNetlist;
use seceda_netlist::NetlistError;
use seceda_sim::FaultSim;
use seceda_testkit::rng::{Rng, SeedableRng, StdRng};

/// Classification of one fault shot under one stimulus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultOutcome {
    /// The fault did not change any functional output.
    Masked,
    /// The functional outputs changed and the alarm raised.
    Detected,
    /// The functional outputs changed and no alarm raised — the outcome
    /// an adversary exploits.
    SilentCorruption,
    /// The alarm raised although outputs were unchanged (overly eager
    /// detector; costs availability, not confidentiality).
    FalseAlarm,
}

/// Aggregated campaign results.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultAnalysis {
    /// Outcome counts in the order masked / detected / silent / false
    /// alarm.
    pub masked: usize,
    /// Detected events.
    pub detected: usize,
    /// Silent corruptions.
    pub silent: usize,
    /// False alarms.
    pub false_alarms: usize,
    /// `detected / (detected + silent)`, or 1.0 if no corrupting fault
    /// occurred.
    pub detection_coverage: f64,
}

impl FaultAnalysis {
    /// Total number of graded (shot, stimulus) events.
    pub fn total(&self) -> usize {
        self.masked + self.detected + self.silent + self.false_alarms
    }
}

/// Runs `campaign` against a protected netlist: every shot is simulated
/// under `stimuli_per_shot` random input vectors and classified.
///
/// For netlists without an alarm (`alarm_index == None`, e.g. TMR), a
/// changed output counts as [`FaultOutcome::SilentCorruption`] — use the
/// coverage to measure *correction* instead.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn analyze_faults(
    protected: &ProtectedNetlist,
    campaign: &FaultCampaign,
    stimuli_per_shot: usize,
    seed: u64,
) -> Result<FaultAnalysis, NetlistError> {
    let nl = &protected.netlist;
    let sim = FaultSim::new(nl)?;
    let shots = campaign.generate(nl);
    let mut rng = StdRng::seed_from_u64(seed);
    let num_inputs = nl.inputs().len();
    let mut analysis = FaultAnalysis {
        masked: 0,
        detected: 0,
        silent: 0,
        false_alarms: 0,
        detection_coverage: 1.0,
    };
    for shot in &shots {
        for _ in 0..stimuli_per_shot {
            let inputs: Vec<bool> = (0..num_inputs).map(|_| rng.gen()).collect();
            let good = sim.outputs(&sim.eval_with_faults(&inputs, &[]));
            let bad = sim.outputs(&sim.eval_with_faults(&inputs, shot));
            let (good_f, good_alarm, bad_f, bad_alarm) = match protected.alarm_index {
                Some(ai) => {
                    let split = |v: &[bool]| {
                        let alarm = v[ai];
                        let mut f = v.to_vec();
                        f.remove(ai);
                        (f, alarm)
                    };
                    let (gf, ga) = split(&good);
                    let (bf, ba) = split(&bad);
                    (gf, ga, bf, ba)
                }
                None => (good.clone(), false, bad.clone(), false),
            };
            debug_assert!(!good_alarm, "golden run must not alarm");
            let corrupted = good_f != bad_f;
            let outcome = match (corrupted, bad_alarm) {
                (false, false) => FaultOutcome::Masked,
                (false, true) => FaultOutcome::FalseAlarm,
                (true, true) => FaultOutcome::Detected,
                (true, false) => FaultOutcome::SilentCorruption,
            };
            match outcome {
                FaultOutcome::Masked => analysis.masked += 1,
                FaultOutcome::Detected => analysis.detected += 1,
                FaultOutcome::SilentCorruption => analysis.silent += 1,
                FaultOutcome::FalseAlarm => analysis.false_alarms += 1,
            }
        }
    }
    let corrupting = analysis.detected + analysis.silent;
    analysis.detection_coverage = if corrupting == 0 {
        1.0
    } else {
        analysis.detected as f64 / corrupting as f64
    };
    Ok(analysis)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::InjectionModel;
    use crate::codes::{duplicate_with_compare, triplicate_with_vote, ProtectedNetlist};
    use seceda_netlist::{c17, majority};

    #[test]
    fn unprotected_circuit_suffers_silent_corruption() {
        let nl = c17();
        let bare = ProtectedNetlist {
            netlist: nl,
            alarm_index: None,
        };
        let campaign = FaultCampaign {
            model: InjectionModel::Random,
            shots: 50,
            seed: 1,
        };
        let a = analyze_faults(&bare, &campaign, 8, 2).expect("analysis");
        assert!(a.silent > 0, "bare logic must show silent corruption");
        assert!(a.detection_coverage < 1.0);
    }

    #[test]
    fn dwc_reaches_full_detection_on_single_faults() {
        let p = duplicate_with_compare(&majority());
        let campaign = FaultCampaign {
            model: InjectionModel::RandomGate,
            shots: 120,
            seed: 3,
        };
        let a = analyze_faults(&p, &campaign, 8, 4).expect("analysis");
        assert_eq!(
            a.silent, 0,
            "single logic faults cannot silently corrupt a DWC design: {a:?}"
        );
        assert!(a.detected > 0);
        assert_eq!(a.detection_coverage, 1.0);
    }

    #[test]
    fn tmr_masks_single_copy_faults() {
        // Faults inside any of the three copies are fully masked by the
        // voter; voter gates themselves are the (known) single point of
        // failure, so target the copies only.
        let base = majority();
        let copies_gate_count = 3 * base.num_gates();
        let p = triplicate_with_vote(&base);
        for gi in 0..copies_gate_count {
            let victim = p.netlist.gates()[gi].output;
            let campaign = FaultCampaign {
                model: InjectionModel::Targeted(vec![victim]),
                shots: 1,
                seed: 5,
            };
            let a = analyze_faults(&p, &campaign, 8, 6).expect("analysis");
            assert_eq!(a.silent, 0, "copy fault at gate {gi} must be masked");
            assert_eq!(a.detected, 0, "TMR has no alarm");
        }
    }

    #[test]
    fn wide_laser_defeats_dwc_sometimes() {
        // a laser window spanning both copies can corrupt them coherently
        // or corrupt outputs without tripping the specific comparator —
        // at minimum, detection coverage may drop below 1.0
        let p = duplicate_with_compare(&majority());
        let campaign = FaultCampaign {
            model: InjectionModel::Laser { width: 16 },
            shots: 200,
            seed: 7,
        };
        let a = analyze_faults(&p, &campaign, 4, 8).expect("analysis");
        // we only assert the analysis runs and classifies everything
        assert_eq!(a.total(), 200 * 4);
    }
}
