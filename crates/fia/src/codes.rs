//! Fault-detection and fault-tolerance transforms.
//!
//! All transforms tag the inserted logic with the `redundancy` marker so
//! security-aware synthesis keeps it; classical CSE would merge the
//! copies and silently void the protection (Sec. IV's composition
//! cross-effect).

use seceda_netlist::{CellKind, GateId, GateTags, NetId, Netlist};

/// A netlist protected by a detection/correction transform.
#[derive(Debug, Clone, PartialEq)]
pub struct ProtectedNetlist {
    /// The protected netlist. Functional outputs keep their original
    /// names/order; detection schemes append an `alarm` output (the last
    /// output).
    pub netlist: Netlist,
    /// Index of the alarm output within [`Netlist::outputs`], if the
    /// scheme detects (rather than corrects) faults.
    pub alarm_index: Option<usize>,
}

fn redundancy_tags() -> GateTags {
    GateTags {
        redundancy: true,
        ..GateTags::default()
    }
}

/// Copies the combinational cone of `nl` into `dst` with all gates
/// tagged, reading the (already copied) primary inputs. Returns the new
/// nets of the original outputs.
fn clone_cone(nl: &Netlist, dst: &mut Netlist, input_map: &[NetId], tags: GateTags) -> Vec<NetId> {
    let order = nl.topo_order().expect("cyclic netlist");
    let mut map: Vec<Option<NetId>> = vec![None; nl.num_nets()];
    for (k, &pi) in nl.inputs().iter().enumerate() {
        map[pi.index()] = Some(input_map[k]);
    }
    for gid in order {
        let g = nl.gate(gid);
        let ins: Vec<NetId> = g
            .inputs
            .iter()
            .map(|&i| map[i.index()].expect("topological"))
            .collect();
        let out = dst.add_gate_tagged(g.kind, &ins, tags);
        map[g.output.index()] = Some(out);
    }
    nl.outputs()
        .iter()
        .map(|&(n, _)| map[n.index()].expect("output mapped"))
        .collect()
}

fn assert_combinational(nl: &Netlist, what: &str) {
    assert!(
        nl.is_combinational(),
        "{what} supports combinational netlists only"
    );
}

/// Duplication with comparison: the logic is instantiated twice; outputs
/// come from the first copy; an `alarm` output raises when any output
/// pair disagrees. Detects any single fault that corrupts an output.
///
/// # Panics
///
/// Panics if `nl` is sequential or cyclic.
pub fn duplicate_with_compare(nl: &Netlist) -> ProtectedNetlist {
    assert_combinational(nl, "duplicate_with_compare");
    let mut out = Netlist::new(format!("{}_dwc", nl.name()));
    let inputs: Vec<NetId> = nl
        .inputs()
        .iter()
        .map(|&pi| {
            let name = nl.net_label(pi);
            out.add_input(name)
        })
        .collect();
    let tags = redundancy_tags();
    let copy_a = clone_cone(nl, &mut out, &inputs, tags);
    let copy_b = clone_cone(nl, &mut out, &inputs, tags);
    for (k, (_, name)) in nl.outputs().iter().enumerate() {
        out.mark_output(copy_a[k], name.clone());
    }
    let diffs: Vec<NetId> = copy_a
        .iter()
        .zip(&copy_b)
        .map(|(&a, &b)| out.add_gate_tagged(CellKind::Xor, &[a, b], tags))
        .collect();
    let alarm = if diffs.len() == 1 {
        diffs[0]
    } else {
        out.add_gate_tagged(CellKind::Or, &diffs, tags)
    };
    out.mark_output(alarm, "alarm");
    ProtectedNetlist {
        netlist: out,
        alarm_index: Some(nl.outputs().len()),
    }
}

/// Triple modular redundancy: three copies and a per-output majority
/// voter. Corrects any fault confined to one copy; no alarm output.
///
/// # Panics
///
/// Panics if `nl` is sequential or cyclic.
pub fn triplicate_with_vote(nl: &Netlist) -> ProtectedNetlist {
    assert_combinational(nl, "triplicate_with_vote");
    let mut out = Netlist::new(format!("{}_tmr", nl.name()));
    let inputs: Vec<NetId> = nl
        .inputs()
        .iter()
        .map(|&pi| {
            let name = nl.net_label(pi);
            out.add_input(name)
        })
        .collect();
    let tags = redundancy_tags();
    let copies: Vec<Vec<NetId>> = (0..3)
        .map(|_| clone_cone(nl, &mut out, &inputs, tags))
        .collect();
    for (k, (_, name)) in nl.outputs().iter().enumerate() {
        let (a, b, c) = (copies[0][k], copies[1][k], copies[2][k]);
        let ab = out.add_gate_tagged(CellKind::And, &[a, b], tags);
        let ac = out.add_gate_tagged(CellKind::And, &[a, c], tags);
        let bc = out.add_gate_tagged(CellKind::And, &[b, c], tags);
        let vote = out.add_gate_tagged(CellKind::Or, &[ab, ac, bc], tags);
        out.mark_output(vote, name.clone());
    }
    ProtectedNetlist {
        netlist: out,
        alarm_index: None,
    }
}

/// The infective countermeasure \[18\]: like duplication-with-compare, but
/// instead of (only) raising an alarm the outputs are *scrambled* with
/// fresh randomness whenever the copies disagree, so a DFA adversary
/// learns nothing from the faulty ciphertext. Appends one random input
/// `inf_rnd{i}` per functional output, then the alarm output.
///
/// # Panics
///
/// Panics if `nl` is sequential or cyclic.
pub fn infective_transform(nl: &Netlist) -> ProtectedNetlist {
    assert_combinational(nl, "infective_transform");
    let dwc = duplicate_with_compare(nl);
    let mut out = dwc.netlist;
    let tags = redundancy_tags();
    let num_functional = nl.outputs().len();
    let alarm_net = out.outputs()[num_functional].0;
    // fresh randomness inputs
    let rnds: Vec<NetId> = (0..num_functional)
        .map(|i| out.add_input(format!("inf_rnd{i}")))
        .collect();
    let functional: Vec<(NetId, String)> = out.outputs()[..num_functional].to_vec();
    out.clear_outputs();
    for (k, (net, name)) in functional.into_iter().enumerate() {
        let poison = out.add_gate_tagged(CellKind::And, &[alarm_net, rnds[k]], tags);
        let scrambled = out.add_gate_tagged(CellKind::Xor, &[net, poison], tags);
        out.mark_output(scrambled, name);
    }
    out.mark_output(alarm_net, "alarm");
    ProtectedNetlist {
        netlist: out,
        alarm_index: Some(num_functional),
    }
}

/// Parity-code protection: a *predictor* cone (re-computation of the
/// logic) feeds a parity tree; the alarm compares predicted and actual
/// output parity. Detects any fault corrupting an odd number of output
/// bits at roughly half the cost of full duplication.
///
/// **Composition hazard (paper Sec. IV, \[61\]):** on a *masked* circuit
/// whose outputs are shares, the parity of the output shares *is* the
/// unmasked secret — both parity wires carry it. Parity protection and
/// Boolean masking do not compose; the `seceda-core` composition engine
/// exists to catch exactly this.
///
/// # Panics
///
/// Panics if `nl` is sequential or cyclic.
pub fn parity_protect(nl: &Netlist) -> ProtectedNetlist {
    assert_combinational(nl, "parity_protect");
    let mut out = Netlist::new(format!("{}_parity", nl.name()));
    let inputs: Vec<NetId> = nl
        .inputs()
        .iter()
        .map(|&pi| {
            let name = nl.net_label(pi);
            out.add_input(name)
        })
        .collect();
    let tags = redundancy_tags();
    let functional = clone_cone(nl, &mut out, &inputs, GateTags::default());
    let predictor = clone_cone(nl, &mut out, &inputs, tags);
    for (k, (_, name)) in nl.outputs().iter().enumerate() {
        out.mark_output(functional[k], name.clone());
    }
    let parity = |out: &mut Netlist, nets: &[NetId]| -> NetId {
        if nets.len() == 1 {
            nets[0]
        } else {
            out.add_gate_tagged(CellKind::Xor, nets, tags)
        }
    };
    let actual = parity(&mut out, &functional);
    let predicted = parity(&mut out, &predictor);
    let alarm = out.add_gate_tagged(CellKind::Xor, &[actual, predicted], tags);
    out.mark_output(alarm, "alarm");
    ProtectedNetlist {
        netlist: out,
        alarm_index: Some(nl.outputs().len()),
    }
}

/// Convenience: evaluates a protected netlist and splits functional
/// outputs from the alarm.
pub fn eval_protected(p: &ProtectedNetlist, inputs: &[bool]) -> (Vec<bool>, Option<bool>) {
    let outs = p.netlist.evaluate(inputs);
    match p.alarm_index {
        Some(i) => {
            let alarm = outs[i];
            let mut functional = outs;
            functional.remove(i);
            (functional, Some(alarm))
        }
        None => (outs, None),
    }
}

/// Returns the gate ids of one redundant copy (the second), useful for
/// targeting faults at the redundancy in tests.
pub fn second_copy_gates(_p: &ProtectedNetlist, original_gate_count: usize) -> Vec<GateId> {
    (original_gate_count..2 * original_gate_count)
        .map(GateId::from_index)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use seceda_netlist::{c17, majority};
    use seceda_sim::{Fault, FaultSim};

    #[test]
    fn dwc_preserves_function_and_stays_quiet() {
        let nl = c17();
        let p = duplicate_with_compare(&nl);
        for pattern in 0..32u32 {
            let inputs: Vec<bool> = (0..5).map(|b| (pattern >> b) & 1 == 1).collect();
            let (outs, alarm) = eval_protected(&p, &inputs);
            assert_eq!(outs, nl.evaluate(&inputs));
            assert_eq!(alarm, Some(false), "no fault, no alarm");
        }
    }

    #[test]
    fn dwc_detects_single_gate_faults() {
        let nl = majority();
        let p = duplicate_with_compare(&nl);
        let sim = FaultSim::new(&p.netlist).expect("sim");
        // flip each gate output of copy A; if the functional output
        // changes, the alarm must raise
        let mut detected_any = false;
        for g in p.netlist.gates() {
            if !g.tags.redundancy {
                continue;
            }
            for pattern in 0..8u32 {
                let inputs: Vec<bool> = (0..3).map(|b| (pattern >> b) & 1 == 1).collect();
                let good = sim.outputs(&sim.eval_with_faults(&inputs, &[]));
                let bad = sim.outputs(&sim.eval_with_faults(&inputs, &[Fault::flip(g.output)]));
                let functional_changed = good[..good.len() - 1] != bad[..bad.len() - 1];
                let alarm = bad[bad.len() - 1];
                if functional_changed {
                    detected_any = true;
                    assert!(
                        alarm,
                        "silent corruption at {:?} pattern {pattern}",
                        g.output
                    );
                }
            }
        }
        assert!(detected_any, "test must exercise at least one detection");
    }

    #[test]
    fn tmr_corrects_single_copy_faults() {
        let nl = majority();
        let original_gates = nl.num_gates();
        let p = triplicate_with_vote(&nl);
        let sim = FaultSim::new(&p.netlist).expect("sim");
        // fault anywhere in the first copy: outputs must stay correct
        for gi in 0..original_gates {
            let g = &p.netlist.gates()[gi];
            for pattern in 0..8u32 {
                let inputs: Vec<bool> = (0..3).map(|b| (pattern >> b) & 1 == 1).collect();
                let expect = nl.evaluate(&inputs);
                let got = sim.outputs(&sim.eval_with_faults(&inputs, &[Fault::flip(g.output)]));
                assert_eq!(got, expect, "TMR must mask fault at gate {gi}");
            }
        }
    }

    #[test]
    fn infective_scrambles_on_fault() {
        let nl = majority();
        let p = infective_transform(&nl);
        let sim = FaultSim::new(&p.netlist).expect("sim");
        // without faults: correct outputs, alarm low (randomness on)
        let n_in = nl.inputs().len();
        let n_rnd = nl.outputs().len();
        let mut inputs = vec![true, false, true];
        inputs.extend(vec![true; n_rnd]); // randomness all-on
        assert_eq!(inputs.len(), n_in + n_rnd);
        let outs = p.netlist.evaluate(&inputs);
        assert_eq!(outs[..1], nl.evaluate(&[true, false, true])[..]);
        assert!(!outs[1], "alarm low");
        // fault one copy's gate: with randomness on, output flips relative
        // to the faulty-but-uninfected value whenever alarm raises
        let victim = p.netlist.gates()[0].output;
        let bad = sim.outputs(&sim.eval_with_faults(&inputs, &[Fault::flip(victim)]));
        let alarm = bad[1];
        if alarm {
            // infection: functional output = corrupted ^ rnd, so an
            // attacker cannot use it as a stable differential
            let mut inputs_off = inputs.clone();
            for r in &mut inputs_off[n_in..] {
                *r = false;
            }
            let bad_off = sim.outputs(&sim.eval_with_faults(&inputs_off, &[Fault::flip(victim)]));
            assert_ne!(bad[0], bad_off[0], "randomness must modulate the output");
        }
    }

    #[test]
    fn redundancy_is_tagged() {
        let p = duplicate_with_compare(&majority());
        assert!(p.netlist.gates().iter().all(|g| g.tags.redundancy));
        let t = triplicate_with_vote(&majority());
        assert!(t.netlist.gates().iter().all(|g| g.tags.redundancy));
    }
}
