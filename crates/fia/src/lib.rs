//! # seceda-fia
//!
//! Fault-injection attacks and countermeasures — the FIA column of
//! Table II.
//!
//! * [`campaign`] — parameterized fault campaigns standing in for the
//!   physical injection means the paper lists (laser, EM, clock
//!   glitches): spatially clustered, timing-critical-path, and uniform
//!   random fault sets;
//! * [`codes`] — countermeasure transforms: duplication-with-compare,
//!   triple modular redundancy with voting, and the infective
//!   countermeasure \[18\] that randomizes outputs upon detection;
//! * [`analysis`] — automatic fault analysis \[22\]: classify every fault
//!   of a campaign as masked / detected / silent corruption and compute
//!   detection coverage ("validation of error-detection properties");
//! * [`dfa`] — differential fault analysis on the toy SPN cipher: key
//!   recovery from (correct, faulty) ciphertext pairs, demonstrating why
//!   the countermeasures are needed;
//! * [`discriminate`] — the natural-vs-malicious fault discrimination the
//!   paper calls for in security-aware DFX infrastructures (Sec. III-F).

pub mod analysis;
pub mod campaign;
pub mod codes;
pub mod dfa;
pub mod discriminate;

pub use analysis::{analyze_faults, FaultAnalysis, FaultOutcome};
pub use campaign::{FaultCampaign, InjectionModel};
pub use codes::{
    duplicate_with_compare, infective_transform, parity_protect, triplicate_with_vote,
    ProtectedNetlist,
};
pub use dfa::{dfa_attack, DfaResult};
pub use discriminate::{FaultDiscriminator, FaultVerdict};
