//! Property-based tests for logic locking.

use seceda_lock::{mux_lock, sat_attack, sat_attack_rebuild, sfll_hd0, xor_lock, LockedNetlist};
use seceda_netlist::{parse_bench, random_circuit, RandomCircuitConfig};
use seceda_testkit::par;
use seceda_testkit::prelude::*;

/// Differential check: the incremental AIG-encoded portfolio attack must
/// take exactly as many DIP iterations as the direct-encoded
/// rebuild-per-iteration baseline, recover the *bit-identical* key (both
/// canonicalize to the lex-min key of the final observation set), and
/// that key must be functionally correct.
fn assert_incremental_matches_rebuild(locked: &LockedNetlist, original: &seceda_netlist::Netlist) {
    let oracle = |x: &[bool]| original.evaluate(x);
    let inc = sat_attack(locked, oracle)
        .expect("incremental attack runs")
        .expect("incremental attack finds a key");
    let reb = sat_attack_rebuild(locked, oracle)
        .expect("rebuild attack runs")
        .expect("rebuild attack finds a key");
    assert_eq!(
        inc.iterations, reb.iterations,
        "incremental and rebuild attacks must agree on DIP count"
    );
    assert_eq!(
        inc.key, reb.key,
        "both attacks canonicalize to the lex-min key and must agree bit-for-bit"
    );
    let n = locked.num_original_inputs;
    for pattern in 0..(1u32 << n) {
        let inputs: Vec<bool> = (0..n).map(|b| (pattern >> b) & 1 == 1).collect();
        let expect = original.evaluate(&inputs);
        assert_eq!(
            locked.evaluate_with_key(&inputs, &inc.key),
            expect,
            "incremental key wrong on {inputs:?}"
        );
        assert_eq!(
            locked.evaluate_with_key(&inputs, &reb.key),
            expect,
            "rebuild key wrong on {inputs:?}"
        );
    }
}

#[test]
fn incremental_attack_matches_rebuild_on_all_schemes() {
    let nl = seceda_netlist::c17();
    assert_incremental_matches_rebuild(&xor_lock(&nl, 8, 7), &nl);
    assert_incremental_matches_rebuild(&mux_lock(&nl, 4, 9), &nl);
    assert_incremental_matches_rebuild(&sfll_hd0(&nl, &[true, false, true, false, true]), &nl);
}

#[test]
fn incremental_attack_matches_rebuild_on_parsed_c17() {
    // same differential property, but on a netlist that went through the
    // .bench frontend instead of the builtin constructor — pins the AIG
    // lowering against parser-produced gate structures (n-ary fanins,
    // explicit buffers)
    let text = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../netlist/tests/data/c17.bench"
    ))
    .expect("c17.bench fixture");
    let nl = parse_bench(&text).expect("c17.bench parses");
    assert_incremental_matches_rebuild(&xor_lock(&nl, 8, 13), &nl);
}

#[test]
fn incremental_attack_matches_rebuild_on_random_hosts() {
    for seed in [1u64, 17, 91] {
        let nl = host(seed, 18);
        assert_incremental_matches_rebuild(&xor_lock(&nl, 6, seed ^ 0xC), &nl);
    }
}

#[test]
fn attack_result_is_identical_for_every_portfolio_size_and_worker_count() {
    // the portfolio races nondeterministically, but lex-min DIP and key
    // canonicalization make the attack's observable result a property of
    // the formula: any worker count (which also sets the portfolio size
    // via max_workers) must produce the same key and iteration count
    let nl = seceda_netlist::c17();
    let locked = xor_lock(&nl, 10, 5);
    let oracle = |x: &[bool]| nl.evaluate(x);
    let baseline = par::with_workers(1, || sat_attack(&locked, oracle))
        .expect("attack runs")
        .expect("key found");
    for workers in [2usize, 3, 8] {
        let r = par::with_workers(workers, || sat_attack(&locked, oracle))
            .expect("attack runs")
            .expect("key found");
        assert_eq!(r.iterations, baseline.iterations, "workers = {workers}");
        assert_eq!(r.key, baseline.key, "workers = {workers}");
        assert_eq!(
            r.conflict_deltas.len(),
            r.iterations + 2,
            "workers = {workers}"
        );
        assert_eq!(
            r.conflicts,
            r.conflict_deltas.iter().sum::<u64>(),
            "workers = {workers}"
        );
    }
}

fn host(seed: u64, gates: usize) -> seceda_netlist::Netlist {
    random_circuit(&RandomCircuitConfig {
        num_inputs: 5,
        num_gates: gates,
        num_outputs: 3,
        with_xor: true,
        seed,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn xor_lock_correct_key_restores(seed in 0u64..3000, gates in 3usize..40, bits in 1usize..12) {
        let nl = host(seed, gates);
        let locked = xor_lock(&nl, bits, seed ^ 0xAA);
        prop_assert!(locked.netlist.validate().is_ok());
        for pattern in 0..32u32 {
            let inputs: Vec<bool> = (0..5).map(|b| (pattern >> b) & 1 == 1).collect();
            prop_assert_eq!(
                locked.evaluate_with_key(&inputs, &locked.correct_key),
                nl.evaluate(&inputs)
            );
        }
    }

    #[test]
    fn mux_lock_correct_key_restores_and_is_acyclic(
        seed in 0u64..3000,
        gates in 3usize..40,
        bits in 1usize..8,
    ) {
        let nl = host(seed, gates);
        let locked = mux_lock(&nl, bits, seed ^ 0xBB);
        prop_assert!(locked.netlist.validate().is_ok(), "mux locking must never build cycles");
        for pattern in 0..32u32 {
            let inputs: Vec<bool> = (0..5).map(|b| (pattern >> b) & 1 == 1).collect();
            prop_assert_eq!(
                locked.evaluate_with_key(&inputs, &locked.correct_key),
                nl.evaluate(&inputs)
            );
        }
    }

    #[test]
    fn sfll_wrong_key_corrupts_exactly_two_cubes(
        seed in 0u64..2000,
        gates in 3usize..25,
        pattern_bits in 0u32..32,
        wrong_bits in 0u32..32,
    ) {
        prop_assume!(pattern_bits != wrong_bits);
        let nl = host(seed, gates);
        let pattern: Vec<bool> = (0..5).map(|b| (pattern_bits >> b) & 1 == 1).collect();
        let wrong: Vec<bool> = (0..5).map(|b| (wrong_bits >> b) & 1 == 1).collect();
        let locked = sfll_hd0(&nl, &pattern);
        let mut diffs = 0usize;
        for p in 0..32u32 {
            let inputs: Vec<bool> = (0..5).map(|b| (p >> b) & 1 == 1).collect();
            if locked.evaluate_with_key(&inputs, &wrong) != nl.evaluate(&inputs) {
                diffs += 1;
            }
        }
        prop_assert_eq!(diffs, 2, "SFLL-HD0 corrupts the protected and the key cube only");
    }
}
