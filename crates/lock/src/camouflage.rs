//! IC camouflaging \[23\] and de-camouflaging.
//!
//! A camouflaged cell looks identical under reverse engineering for a
//! small set of candidate functions (here NAND / NOR / XNOR). The
//! attacker's view is modeled as a *keyed* netlist in which each
//! ambiguous cell is a 4:1 selection over the candidates driven by two
//! "key" bits; de-camouflaging is then exactly the oracle-guided SAT
//! attack of [`crate::sat_attack`](mod@crate::sat_attack).

use crate::locking::LockedNetlist;
use crate::sat_attack::{sat_attack, SatAttackResult};
use seceda_netlist::{CellKind, GateTags, Netlist, NetlistError};
use seceda_testkit::rng::{Rng, SeedableRng, StdRng};

/// The candidate functions a camouflaged cell may implement.
const CANDIDATES: [CellKind; 3] = [CellKind::Nand, CellKind::Nor, CellKind::Xnor];

/// A camouflaged design: the foundry/user-visible ambiguous view plus
/// the designer's ground truth.
#[derive(Debug, Clone, PartialEq)]
pub struct CamouflagedNetlist {
    /// The attacker's view: ambiguous cells expanded into key-selected
    /// candidate functions (2 key bits per camouflaged gate).
    pub attacker_view: LockedNetlist,
    /// Indices (into the original gate list) of the camouflaged gates.
    pub camouflaged_gates: Vec<usize>,
    /// The true design.
    pub original: Netlist,
}

/// Camouflages `count` pseudo-randomly chosen 2-input gates whose kind is
/// among the candidate set. Gates of other kinds are left alone.
///
/// # Panics
///
/// Panics if the design contains no camouflageable gate.
pub fn camouflage(nl: &Netlist, count: usize, seed: u64) -> CamouflagedNetlist {
    let camouflageable: Vec<usize> = nl
        .gates()
        .iter()
        .enumerate()
        .filter(|(_, g)| g.inputs.len() == 2 && CANDIDATES.contains(&g.kind))
        .map(|(i, _)| i)
        .collect();
    assert!(
        !camouflageable.is_empty(),
        "no NAND/NOR/XNOR gates to camouflage"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut chosen = camouflageable;
    // Fisher-Yates prefix shuffle
    for i in 0..chosen.len().saturating_sub(1) {
        let j = rng.gen_range(i..chosen.len());
        chosen.swap(i, j);
    }
    chosen.truncate(count.min(chosen.len()));
    chosen.sort_unstable();

    // build the attacker's view: replace each chosen gate with the
    // key-selected candidate bundle
    let mut view = Netlist::new(format!("{}_camo", nl.name()));
    let mut map = vec![None; nl.num_nets()];
    for &pi in nl.inputs() {
        let name = nl.net_label(pi);
        map[pi.index()] = Some(view.add_input(name));
    }
    // key inputs appended after functional inputs, two per cell
    let key_inputs: Vec<_> = (0..2 * chosen.len())
        .map(|i| view.add_input(format!("key{i}")))
        .collect();
    let mut correct_key = vec![false; 2 * chosen.len()];
    let order = nl.topo_order().expect("cyclic netlist");
    let tags = GateTags {
        key_gate: true,
        ..GateTags::default()
    };
    for gid in order {
        let g = nl.gate(gid);
        let gi = gid.index();
        let ins: Vec<_> = g
            .inputs
            .iter()
            .map(|&i| map[i.index()].expect("topological"))
            .collect();
        let out = match chosen.iter().position(|&c| c == gi) {
            None => view.add_gate_tagged(g.kind, &ins, g.tags),
            Some(slot) => {
                // candidates muxed by two key bits:
                // 00 -> nand, 01 -> nor, 1x -> xnor
                let nand = view.add_gate_tagged(CellKind::Nand, &ins, tags);
                let nor = view.add_gate_tagged(CellKind::Nor, &ins, tags);
                let xnor = view.add_gate_tagged(CellKind::Xnor, &ins, tags);
                let k0 = key_inputs[2 * slot];
                let k1 = key_inputs[2 * slot + 1];
                let lo = view.add_gate_tagged(CellKind::Mux, &[k0, nand, nor], tags);
                let sel = view.add_gate_tagged(CellKind::Mux, &[k1, lo, xnor], tags);
                let truth = CANDIDATES
                    .iter()
                    .position(|&k| k == g.kind)
                    .expect("candidate kind");
                // encode the true function into the correct key
                match truth {
                    0 => {} // 00
                    1 => correct_key[2 * slot] = true,
                    _ => correct_key[2 * slot + 1] = true,
                }
                sel
            }
        };
        map[g.output.index()] = Some(out);
    }
    for (net, name) in nl.outputs() {
        view.mark_output(map[net.index()].expect("output mapped"), name.clone());
    }

    CamouflagedNetlist {
        attacker_view: LockedNetlist {
            netlist: view,
            correct_key,
            num_original_inputs: nl.inputs().len(),
        },
        camouflaged_gates: chosen,
        original: nl.clone(),
    }
}

/// De-camouflages by running the oracle-guided SAT attack against the
/// ambiguous view, returning a functionally correct cell assignment.
///
/// # Errors
///
/// Propagates encoding errors.
pub fn decamouflage(camo: &CamouflagedNetlist) -> Result<Option<SatAttackResult>, NetlistError> {
    let original = camo.original.clone();
    sat_attack(&camo.attacker_view, move |x| original.evaluate(x))
}

#[cfg(test)]
mod tests {
    use super::*;
    use seceda_netlist::c17;

    #[test]
    fn correct_key_reproduces_original() {
        let nl = c17();
        let camo = camouflage(&nl, 3, 5);
        assert_eq!(camo.camouflaged_gates.len(), 3);
        for pattern in 0..32u32 {
            let inputs: Vec<bool> = (0..5).map(|b| (pattern >> b) & 1 == 1).collect();
            assert_eq!(
                camo.attacker_view
                    .evaluate_with_key(&inputs, &camo.attacker_view.correct_key),
                nl.evaluate(&inputs)
            );
        }
    }

    #[test]
    fn decamouflage_recovers_function() {
        let nl = c17();
        let camo = camouflage(&nl, 4, 6);
        let result = decamouflage(&camo).expect("runs").expect("assignment");
        for pattern in 0..32u32 {
            let inputs: Vec<bool> = (0..5).map(|b| (pattern >> b) & 1 == 1).collect();
            assert_eq!(
                camo.attacker_view.evaluate_with_key(&inputs, &result.key),
                nl.evaluate(&inputs),
                "recovered assignment wrong on {inputs:?}"
            );
        }
    }

    #[test]
    fn more_camouflaged_cells_do_not_reduce_effort() {
        let nl = c17();
        let small = camouflage(&nl, 1, 7);
        let large = camouflage(&nl, 6, 8);
        let rs = decamouflage(&small).expect("runs").expect("ok");
        let rl = decamouflage(&large).expect("runs").expect("ok");
        assert!(rl.iterations >= rs.iterations);
    }
}
