//! Topological watermarking for design-IP ownership claims.
//!
//! A keyed PRG selects insertion points; at each point a signature bit is
//! embedded as a functionally transparent double-inverter (bit 1) or
//! double-buffer (bit 0) pair. Verification re-derives the positions from
//! the owner's secret and reads the pattern back.
//!
//! The scheme doubles as a composition case study: classical synthesis
//! legitimately removes buffer/inverter pairs, destroying the mark, while
//! tag-honoring synthesis (the watermark gates carry the `monitor` tag)
//! preserves it — optimization versus security again.

use seceda_netlist::{CellKind, GateTags, NetId, Netlist};
use seceda_testkit::rng::{Rng, SeedableRng, StdRng};

/// An embedded watermark: the owner's secret plus the claimed signature.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Watermark {
    /// Owner secret (selects insertion points).
    pub secret: u64,
    /// The embedded signature bits.
    pub signature: Vec<bool>,
}

fn mark_tags() -> GateTags {
    GateTags {
        monitor: true,
        ..GateTags::default()
    }
}

/// Embeds `signature` into `nl`; returns the watermarked netlist.
///
/// # Panics
///
/// Panics if the netlist has no gates or the signature is empty.
pub fn embed_watermark(nl: &Netlist, secret: u64, signature: &[bool]) -> Netlist {
    assert!(nl.num_gates() > 0, "cannot watermark an empty netlist");
    assert!(!signature.is_empty(), "empty signature");
    assert!(
        signature.len() <= nl.num_gates(),
        "signature longer than the number of candidate nets"
    );
    let mut marked = nl.clone();
    let candidates: Vec<NetId> = nl.gates().iter().map(|g| g.output).collect();
    let targets = select_targets(&candidates, secret, signature.len());
    for (&bit, target) in signature.iter().zip(targets) {
        let kind = if bit { CellKind::Not } else { CellKind::Buf };
        // first stage rewires the loads, second stage restores polarity
        let stage1 = marked.insert_after(target, kind, &[], mark_tags());
        marked.insert_after(stage1, kind, &[], mark_tags());
    }
    marked
}

/// Keyed sampling without replacement: a Fisher-Yates prefix shuffle
/// seeded by the owner secret.
fn select_targets(candidates: &[NetId], secret: u64, count: usize) -> Vec<NetId> {
    let mut rng = StdRng::seed_from_u64(secret);
    let mut pool = candidates.to_vec();
    for i in 0..pool.len().saturating_sub(1) {
        let j = rng.gen_range(i..pool.len());
        pool.swap(i, j);
    }
    pool.truncate(count);
    pool
}

/// Verifies the watermark: re-derives the insertion points from `secret`
/// and checks that each point carries the expected transparent pair.
/// Returns the number of signature bits recovered intact.
///
/// Verification is structural: it looks for a pair of same-kind
/// `Buf`/`Not` gates in a chain hanging off the expected net.
pub fn verify_watermark(nl: &Netlist, watermark: &Watermark) -> usize {
    // Collect, for every net, a chain signature: driver kind + its single
    // input's driver kind (the two inserted stages appear as two chained
    // unary gates somewhere in the fanout of the original target).
    let mut recovered = 0usize;
    // reconstruct the original candidate list length: watermark gates
    // were appended after the original gates, two per bit
    let inserted = 2 * watermark.signature.len();
    if nl.num_gates() < inserted {
        return 0;
    }
    let original_gates = nl.num_gates() - inserted;
    let candidates: Vec<NetId> = nl.gates()[..original_gates]
        .iter()
        .map(|g| g.output)
        .collect();
    if candidates.is_empty() || watermark.signature.len() > candidates.len() {
        return 0;
    }
    let targets = select_targets(&candidates, watermark.secret, watermark.signature.len());
    let mut cursor = original_gates;
    for (&bit, expected_target) in watermark.signature.iter().zip(targets) {
        let kind = if bit { CellKind::Not } else { CellKind::Buf };
        // the two inserted gates for this bit sit at `cursor`, `cursor+1`
        if cursor + 1 < nl.num_gates() {
            let g1 = &nl.gates()[cursor];
            let g2 = &nl.gates()[cursor + 1];
            if g1.kind == kind
                && g2.kind == kind
                && g1.inputs[..] == [expected_target]
                && g2.inputs[..] == [g1.output]
            {
                recovered += 1;
            }
        }
        cursor += 2;
    }
    recovered
}

#[cfg(test)]
mod tests {
    use super::*;
    use seceda_netlist::c17;

    #[test]
    fn watermark_is_functionally_transparent() {
        let nl = c17();
        let marked = embed_watermark(&nl, 0xB0B, &[true, false, true, true]);
        assert_eq!(nl.truth_table(), marked.truth_table());
    }

    #[test]
    fn owner_verifies_full_signature() {
        let nl = c17();
        let wm = Watermark {
            secret: 0xB0B,
            signature: vec![true, false, true, true],
        };
        let marked = embed_watermark(&nl, wm.secret, &wm.signature);
        assert_eq!(verify_watermark(&marked, &wm), 4);
    }

    #[test]
    fn wrong_secret_recovers_little() {
        let nl = c17();
        let wm = Watermark {
            secret: 0xB0B,
            signature: vec![true, false, true, true, false, true],
        };
        let marked = embed_watermark(&nl, wm.secret, &wm.signature);
        let forged = Watermark {
            secret: 0xBAD,
            ..wm.clone()
        };
        assert!(verify_watermark(&marked, &forged) < wm.signature.len());
    }

    #[test]
    fn unmarked_design_fails_verification() {
        let nl = c17();
        let wm = Watermark {
            secret: 0xB0B,
            signature: vec![true, false],
        };
        assert_eq!(verify_watermark(&nl, &wm), 0);
    }
}
