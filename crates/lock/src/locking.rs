//! Combinational logic-locking transforms.

use seceda_netlist::{CellKind, GateTags, NetId, Netlist, Word};
use seceda_testkit::rng::{Rng, SeedableRng, StdRng};

/// A locked netlist together with its secret.
///
/// The locked netlist's primary inputs are the original inputs followed
/// by the key inputs (`key0, key1, ...`).
#[derive(Debug, Clone, PartialEq)]
pub struct LockedNetlist {
    /// The locked design.
    pub netlist: Netlist,
    /// The correct key (one bool per key input, in key-input order).
    pub correct_key: Vec<bool>,
    /// Number of original (non-key) inputs.
    pub num_original_inputs: usize,
}

impl LockedNetlist {
    /// Number of key bits.
    pub fn key_width(&self) -> usize {
        self.correct_key.len()
    }

    /// Concatenates functional inputs with a key into a full input
    /// vector.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn inputs_with_key(&self, inputs: &[bool], key: &[bool]) -> Vec<bool> {
        assert_eq!(inputs.len(), self.num_original_inputs, "input width");
        assert_eq!(key.len(), self.correct_key.len(), "key width");
        let mut v = inputs.to_vec();
        v.extend_from_slice(key);
        v
    }

    /// Evaluates the locked design under a given key.
    pub fn evaluate_with_key(&self, inputs: &[bool], key: &[bool]) -> Vec<bool> {
        self.netlist.evaluate(&self.inputs_with_key(inputs, key))
    }
}

/// Net indices reachable from `start` by following gate fanout.
fn transitive_fanout(nl: &Netlist, start: NetId) -> std::collections::HashSet<usize> {
    let fanout = nl.fanout_map();
    let mut seen = std::collections::HashSet::new();
    let mut stack = vec![start.index()];
    while let Some(n) = stack.pop() {
        for &g in &fanout[n] {
            let out = nl.gate(g).output;
            if seen.insert(out.index()) {
                stack.push(out.index());
            }
        }
    }
    seen
}

fn key_tags() -> GateTags {
    GateTags {
        key_gate: true,
        ..GateTags::default()
    }
}

/// EPIC-style XOR/XNOR locking \[24\]: inserts `key_bits` key gates at
/// pseudo-random internal nets. Each key gate is an XOR (correct key bit
/// 0) or XNOR (correct key bit 1), so the correct key restores the
/// original function and any wrong bit inverts a signal.
///
/// # Panics
///
/// Panics if the netlist has no gates or `key_bits == 0`.
pub fn xor_lock(nl: &Netlist, key_bits: usize, seed: u64) -> LockedNetlist {
    assert!(key_bits > 0, "need at least one key bit");
    assert!(nl.num_gates() > 0, "cannot lock an empty netlist");
    let mut locked = nl.clone();
    let num_original_inputs = locked.inputs().len();
    let mut rng = StdRng::seed_from_u64(seed);
    // candidate nets: gate outputs of the original design
    let candidates: Vec<NetId> = nl.gates().iter().map(|g| g.output).collect();
    let mut correct_key = Vec::with_capacity(key_bits);
    for i in 0..key_bits {
        let key_in = locked.add_input(format!("key{i}"));
        let target = candidates[rng.gen_range(0..candidates.len())];
        let bit: bool = rng.gen();
        let kind = if bit { CellKind::Xnor } else { CellKind::Xor };
        locked.insert_after(target, kind, &[key_in], key_tags());
        correct_key.push(bit);
    }
    LockedNetlist {
        netlist: locked,
        correct_key,
        num_original_inputs,
    }
}

/// MUX locking: each key bit controls a 2:1 multiplexer selecting
/// between the true signal and a decoy signal from elsewhere in the
/// design. The correct key bit routes the true signal.
///
/// # Panics
///
/// Panics if the netlist has fewer than two gates or `key_bits == 0`.
pub fn mux_lock(nl: &Netlist, key_bits: usize, seed: u64) -> LockedNetlist {
    assert!(key_bits > 0, "need at least one key bit");
    assert!(nl.num_gates() >= 2, "need at least two gates for decoys");
    let mut locked = nl.clone();
    let num_original_inputs = locked.inputs().len();
    let mut rng = StdRng::seed_from_u64(seed);
    let candidates: Vec<NetId> = nl.gates().iter().map(|g| g.output).collect();
    let mut correct_key = Vec::with_capacity(key_bits);
    for i in 0..key_bits {
        let key_in = locked.add_input(format!("key{i}"));
        let ti = rng.gen_range(0..candidates.len());
        let target = candidates[ti];
        // the decoy must not lie in the transitive fanout of the target,
        // or the multiplexer would close a combinational cycle
        let downstream = transitive_fanout(&locked, target);
        let safe: Vec<NetId> = candidates
            .iter()
            .copied()
            .filter(|&c| c != target && !downstream.contains(&c.index()))
            .collect();
        if safe.is_empty() {
            // no usable decoy for this target: fall back to an XOR gate
            let bit: bool = rng.gen();
            let kind = if bit { CellKind::Xnor } else { CellKind::Xor };
            locked.insert_after(target, kind, &[key_in], key_tags());
            correct_key.push(bit);
            continue;
        }
        let decoy = safe[rng.gen_range(0..safe.len())];
        let bit: bool = rng.gen();
        // mux inputs are [sel, a, b] -> sel ? b : a
        // bit=false: true signal on the a-leg; bit=true: on the b-leg
        let (a_leg, b_leg) = if bit {
            (decoy, target)
        } else {
            (target, decoy)
        };
        // insert_after keeps `target` as the first gate input, so build
        // the mux manually and rewire loads
        let mux = locked.insert_after(target, CellKind::Mux, &[a_leg, b_leg], key_tags());
        // fix the select line: insert_after made inputs [target, a, b];
        // we need [key, a_leg, b_leg]
        let gid = locked.net(mux).driver.expect("mux driver");
        locked.gate_mut(gid).inputs = [key_in, a_leg, b_leg].into();
        correct_key.push(bit);
    }
    LockedNetlist {
        netlist: locked,
        correct_key,
        num_original_inputs,
    }
}

/// SFLL-HD with h = 0 (a.k.a. TTLock) \[51\]: the design is modified to
/// flip every output for exactly one protected input pattern, and a
/// restore unit (comparator against the key) flips it back when the key
/// equals the protected pattern. SAT attacks need to enumerate
/// essentially all input patterns to find the single protected cube.
///
/// The key width equals the input width; the correct key is the
/// protected pattern.
///
/// # Panics
///
/// Panics if the netlist has no inputs or outputs.
pub fn sfll_hd0(nl: &Netlist, protected_pattern: &[bool]) -> LockedNetlist {
    assert!(!nl.inputs().is_empty(), "design needs inputs");
    assert!(!nl.outputs().is_empty(), "design needs outputs");
    assert_eq!(
        protected_pattern.len(),
        nl.inputs().len(),
        "pattern width must match inputs"
    );
    let mut locked = nl.clone();
    let num_original_inputs = locked.inputs().len();
    let tags = key_tags();
    let original_inputs: Vec<NetId> = locked.inputs().to_vec();

    // strip: flip outputs when x == protected_pattern (hard-wired cube)
    let cube_lits: Vec<NetId> = original_inputs
        .iter()
        .zip(protected_pattern)
        .map(|(&x, &bit)| {
            if bit {
                x
            } else {
                locked.add_gate_tagged(CellKind::Not, &[x], tags)
            }
        })
        .collect();
    let strip = if cube_lits.len() == 1 {
        cube_lits[0]
    } else {
        locked.add_gate_tagged(CellKind::And, &cube_lits, tags)
    };

    // restore: flip outputs when x == key
    let key_inputs: Vec<NetId> = (0..num_original_inputs)
        .map(|i| locked.add_input(format!("key{i}")))
        .collect();
    let x_word = Word::new(original_inputs);
    let k_word = Word::new(key_inputs);
    let restore = x_word.eq(&mut locked, &k_word);
    // tag the comparator gates
    let flip = locked.add_gate_tagged(CellKind::Xor, &[strip, restore], tags);

    // apply flip to every output
    let outputs: Vec<(NetId, String)> = locked.outputs().to_vec();
    locked.clear_outputs();
    for (net, name) in outputs {
        let flipped = locked.add_gate_tagged(CellKind::Xor, &[net, flip], tags);
        locked.mark_output(flipped, name);
    }
    LockedNetlist {
        netlist: locked,
        correct_key: protected_pattern.to_vec(),
        num_original_inputs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seceda_netlist::c17;
    use seceda_testkit::rng::{Rng, SeedableRng, StdRng};

    fn exhaustive_inputs(n: usize) -> impl Iterator<Item = Vec<bool>> {
        (0..(1u32 << n)).map(move |p| (0..n).map(|b| (p >> b) & 1 == 1).collect())
    }

    fn check_correct_key_restores(locked: &LockedNetlist, original: &Netlist) {
        for inputs in exhaustive_inputs(original.inputs().len()) {
            assert_eq!(
                locked.evaluate_with_key(&inputs, &locked.correct_key),
                original.evaluate(&inputs),
                "correct key must restore function for {inputs:?}"
            );
        }
    }

    fn check_wrong_key_corrupts(locked: &LockedNetlist, original: &Netlist, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut corrupted_somewhere = false;
        for _ in 0..20 {
            let wrong: Vec<bool> = (0..locked.key_width()).map(|_| rng.gen()).collect();
            if wrong == locked.correct_key {
                continue;
            }
            for inputs in exhaustive_inputs(original.inputs().len()) {
                if locked.evaluate_with_key(&inputs, &wrong) != original.evaluate(&inputs) {
                    corrupted_somewhere = true;
                    break;
                }
            }
        }
        assert!(corrupted_somewhere, "wrong keys must corrupt something");
    }

    #[test]
    fn xor_lock_roundtrip() {
        let nl = c17();
        let locked = xor_lock(&nl, 6, 42);
        assert_eq!(locked.key_width(), 6);
        check_correct_key_restores(&locked, &nl);
        check_wrong_key_corrupts(&locked, &nl, 1);
    }

    #[test]
    fn xor_lock_single_wrong_bit_corrupts() {
        let nl = c17();
        let locked = xor_lock(&nl, 4, 43);
        // flipping one key bit inverts one internal signal; some input
        // must expose it (the XOR gate output differs everywhere, and
        // c17's nets are all observable for some pattern)
        for bit in 0..4 {
            let mut key = locked.correct_key.clone();
            key[bit] = !key[bit];
            let differs = exhaustive_inputs(5)
                .any(|inputs| locked.evaluate_with_key(&inputs, &key) != nl.evaluate(&inputs));
            assert!(differs, "wrong bit {bit} never observable");
        }
    }

    #[test]
    fn mux_lock_roundtrip() {
        let nl = c17();
        let locked = mux_lock(&nl, 5, 44);
        check_correct_key_restores(&locked, &nl);
        assert_eq!(locked.netlist.validate(), Ok(()));
    }

    #[test]
    fn sfll_flips_exactly_the_protected_cube_without_restore() {
        let nl = c17();
        let pattern = vec![true, false, true, true, false];
        let locked = sfll_hd0(&nl, &pattern);
        check_correct_key_restores(&locked, &nl);
        // with an all-zero (wrong) key, outputs differ exactly on the
        // protected pattern and on the key pattern (here: zero vector)
        let wrong = vec![false; 5];
        let mut diff_count = 0;
        for inputs in exhaustive_inputs(5) {
            if locked.evaluate_with_key(&inputs, &wrong) != nl.evaluate(&inputs) {
                diff_count += 1;
            }
        }
        assert_eq!(
            diff_count, 2,
            "SFLL-HD0 with a wrong key corrupts exactly two cubes"
        );
    }

    #[test]
    fn key_gates_are_tagged() {
        let locked = xor_lock(&c17(), 3, 45);
        let tagged = locked
            .netlist
            .gates()
            .iter()
            .filter(|g| g.tags.key_gate)
            .count();
        assert_eq!(tagged, 3);
    }
}
