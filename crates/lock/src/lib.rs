//! # seceda-lock
//!
//! Design-IP protection and its adversaries — the piracy column of
//! Table II.
//!
//! * [`xor_lock`] / [`mux_lock`] — EPIC-style combinational logic
//!   locking \[24\]: key gates inserted at netlist granularity, tagged so
//!   security-aware synthesis never optimizes them away;
//! * [`sfll_hd0`] — stripped-functionality logic locking (SFLL-HD with
//!   h = 0): provably resilient against naive SAT attacks at the price
//!   of one protected input pattern \[51\];
//! * [`sat_attack`](mod@sat_attack) — the oracle-guided SAT attack \[33\]: iteratively
//!   finds distinguishing input patterns until only functionally correct
//!   keys remain. This is "verification mimicking the attacker"
//!   (Sec. III-D of the paper);
//! * [`camouflage`](mod@camouflage) — IC camouflaging \[23\] modeled as ambiguous cells,
//!   plus de-camouflaging via the same SAT machinery;
//! * [`metrics`] — output-corruption metrics for locked designs;
//! * [`watermark`] — topological watermarking, with a robustness check
//!   that shows classical (security-unaware) optimization strips the
//!   mark while tag-honoring synthesis preserves it.

pub mod camouflage;
pub mod metrics;
pub mod sat_attack;
pub mod watermark;

mod locking;

pub use camouflage::{camouflage, decamouflage, CamouflagedNetlist};
pub use locking::{mux_lock, sfll_hd0, xor_lock, LockedNetlist};
pub use metrics::{output_corruption, CorruptionReport};
pub use sat_attack::{
    sat_attack, sat_attack_budgeted, sat_attack_rebuild, SatAttackCheckpoint, SatAttackOutcome,
    SatAttackResult,
};
pub use watermark::{embed_watermark, verify_watermark, Watermark};
