//! Security metrics for locked designs.

use crate::locking::LockedNetlist;
use seceda_testkit::rng::{Rng, SeedableRng, StdRng};

/// Output-corruption statistics of a locked design under wrong keys.
#[derive(Debug, Clone, PartialEq)]
pub struct CorruptionReport {
    /// Average fraction of output bits flipped by a random wrong key
    /// (0.5 is the ideal avalanche behaviour).
    pub avg_output_corruption: f64,
    /// Fraction of sampled wrong keys that corrupt at least one output
    /// for at least one sampled input (wrong keys that corrupt nothing
    /// are functionally correct duplicates — a locking weakness).
    pub effective_key_fraction: f64,
    /// Number of wrong keys sampled.
    pub keys_sampled: usize,
    /// Number of inputs sampled per key.
    pub inputs_sampled: usize,
}

/// Estimates output corruption under random wrong keys and random
/// functional inputs.
///
/// # Panics
///
/// Panics if sample counts are zero.
pub fn output_corruption(
    locked: &LockedNetlist,
    keys: usize,
    inputs_per_key: usize,
    seed: u64,
) -> CorruptionReport {
    assert!(keys > 0 && inputs_per_key > 0, "need non-zero samples");
    let mut rng = StdRng::seed_from_u64(seed);
    let nx = locked.num_original_inputs;
    let nk = locked.key_width();
    let mut total_fraction = 0.0;
    let mut effective = 0usize;
    let mut samples = 0usize;
    for _ in 0..keys {
        let mut key: Vec<bool> = (0..nk).map(|_| rng.gen()).collect();
        if key == locked.correct_key {
            // force a wrong key
            key[0] = !key[0];
        }
        let mut corrupts = false;
        for _ in 0..inputs_per_key {
            let inputs: Vec<bool> = (0..nx).map(|_| rng.gen()).collect();
            let good = locked.evaluate_with_key(&inputs, &locked.correct_key);
            let bad = locked.evaluate_with_key(&inputs, &key);
            let flipped = good.iter().zip(&bad).filter(|(a, b)| a != b).count();
            total_fraction += flipped as f64 / good.len().max(1) as f64;
            samples += 1;
            if flipped > 0 {
                corrupts = true;
            }
        }
        if corrupts {
            effective += 1;
        }
    }
    CorruptionReport {
        avg_output_corruption: total_fraction / samples as f64,
        effective_key_fraction: effective as f64 / keys as f64,
        keys_sampled: keys,
        inputs_sampled: inputs_per_key,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::locking::{sfll_hd0, xor_lock};
    use seceda_netlist::c17;

    #[test]
    fn xor_locking_corrupts_broadly() {
        let locked = xor_lock(&c17(), 8, 31);
        let report = output_corruption(&locked, 30, 30, 32);
        assert!(
            report.avg_output_corruption > 0.1,
            "XOR locking should visibly corrupt: {report:?}"
        );
        assert!(
            report.effective_key_fraction > 0.8,
            "most wrong keys must matter: {report:?}"
        );
    }

    #[test]
    fn sfll_corrupts_rarely_by_design() {
        // SFLL trades output corruption for SAT resilience: a wrong key
        // corrupts only two input cubes out of 2^n
        let locked = sfll_hd0(&c17(), &[true, true, false, false, true]);
        let report = output_corruption(&locked, 30, 30, 33);
        assert!(
            report.avg_output_corruption < 0.2,
            "SFLL corruption must be sparse: {report:?}"
        );
    }

    #[test]
    fn report_totals_consistent() {
        let locked = xor_lock(&c17(), 4, 35);
        let report = output_corruption(&locked, 5, 7, 36);
        assert_eq!(report.keys_sampled, 5);
        assert_eq!(report.inputs_sampled, 7);
        assert!(report.effective_key_fraction <= 1.0);
        assert!(report.avg_output_corruption <= 1.0);
    }
}
