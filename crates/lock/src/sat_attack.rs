//! The oracle-guided SAT attack on logic locking \[33\].
//!
//! The attacker holds the locked netlist (reverse-engineered from layout)
//! and black-box access to an activated chip (the *oracle*). Each
//! iteration asks the solver for a *distinguishing input pattern* (DIP) —
//! an input on which two different keys produce different outputs — and
//! queries the oracle on it. The oracle response rules out at least one
//! equivalence class of wrong keys. When no DIP remains, any surviving
//! key is functionally correct.
//!
//! [`sat_attack`] keeps ONE live solver across the whole DIP loop: the
//! two keyed copies and the difference miter are encoded exactly once,
//! and each iteration appends only the two freshly constrained
//! observation copies through the [`CnfBuilder`] impl on [`Solver`].
//! Learned clauses survive across iterations, so later (harder) DIP
//! queries start from everything the solver already derived. The
//! rebuild-from-scratch baseline is kept as [`sat_attack_rebuild`] for
//! differential testing and benchmarking.

use crate::locking::LockedNetlist;
use seceda_netlist::NetlistError;
use seceda_sat::{
    encode_netlist, encode_netlist_bound, Cnf, CnfBuilder, Lit, SatResult, Signal, Solver, Var,
};

/// Outcome of a SAT attack.
#[derive(Debug, Clone, PartialEq)]
pub struct SatAttackResult {
    /// A functionally correct key (may differ from the designer's key
    /// bit-for-bit while producing identical behaviour).
    pub key: Vec<bool>,
    /// Number of DIP iterations (equals oracle queries).
    pub iterations: usize,
    /// Total solver conflicts across all iterations, a proxy for attack
    /// effort.
    pub conflicts: u64,
    /// Solver conflicts spent in each DIP iteration (the final entry is
    /// the key-extraction solve).
    pub conflict_deltas: Vec<u64>,
}

/// Encodes the attack scaffolding — two copies of the locked circuit
/// sharing X but with independent keys, plus the difference miter — into
/// any clause sink. Returns `(x_vars, k1_vars, k2_vars, diff_lit)`.
#[allow(clippy::type_complexity)]
fn encode_attack_scaffold<B: CnfBuilder>(
    locked: &LockedNetlist,
    sink: &mut B,
) -> Result<(Vec<Var>, Vec<Var>, Vec<Var>, Lit), NetlistError> {
    let nl = &locked.netlist;
    let nx = locked.num_original_inputs;
    let nk = locked.key_width();
    let enc1 = encode_netlist(nl, sink)?;
    let enc2 = encode_netlist(nl, sink)?;
    // share functional inputs
    for i in 0..nx {
        sink.gate_buf(enc1.input_vars[i].pos(), enc2.input_vars[i].pos());
    }
    // diff literal over outputs
    let mut diffs = Vec::new();
    for (o1, o2) in enc1.output_vars.iter().zip(&enc2.output_vars) {
        let d = sink.new_var().pos();
        sink.gate_xor(d, o1.pos(), o2.pos());
        diffs.push(d);
    }
    let diff = sink.new_var().pos();
    for &d in &diffs {
        sink.add_clause([diff, !d]);
    }
    let mut big = diffs;
    big.push(!diff);
    sink.add_clause(big);

    let k1: Vec<_> = enc1.input_vars[nx..nx + nk].to_vec();
    let k2: Vec<_> = enc2.input_vars[nx..nx + nk].to_vec();
    let x_vars = enc1.input_vars[..nx].to_vec();
    Ok((x_vars, k1, k2, diff))
}

/// Appends one observation `(x_hat, y_hat)` to the attack encoding: a
/// fresh constrained circuit copy per key, with inputs pinned to `x_hat`,
/// outputs pinned to `y_hat`, and key inputs tied to the key variables.
fn encode_observation<B: CnfBuilder>(
    locked: &LockedNetlist,
    sink: &mut B,
    k1: &[Var],
    k2: &[Var],
    x_hat: &[bool],
    y_hat: &[bool],
) -> Result<(), NetlistError> {
    let nl = &locked.netlist;
    let nx = locked.num_original_inputs;
    for key_vars in [k1, k2] {
        let enc = encode_netlist(nl, sink)?;
        for (i, &xv) in x_hat.iter().enumerate() {
            sink.add_clause([enc.input_vars[i].lit(xv)]);
        }
        for (j, kv) in key_vars.iter().enumerate() {
            sink.gate_buf(enc.input_vars[nx + j].pos(), kv.pos());
        }
        for (o, &yv) in enc.output_vars.iter().zip(y_hat) {
            sink.add_clause([o.lit(yv)]);
        }
    }
    Ok(())
}

/// Appends one observation `(x_hat, y_hat)` with the functional inputs
/// *constant-folded* through the circuit: only the key-dependent cone
/// survives as variables and clauses, so each DIP iteration grows the
/// live formula by a handful of clauses instead of two full circuit
/// copies. Semantically identical to [`encode_observation`] — both pin
/// the same function of the key variables — which is what keeps the
/// lex-min DIP transcript (and hence the iteration count) in exact
/// agreement with the rebuild baseline.
fn encode_observation_folded<B: CnfBuilder>(
    locked: &LockedNetlist,
    sink: &mut B,
    const_false: Lit,
    k1: &[Var],
    k2: &[Var],
    x_hat: &[bool],
    y_hat: &[bool],
) -> Result<(), NetlistError> {
    let nl = &locked.netlist;
    for key_vars in [k1, k2] {
        let bindings: Vec<Signal> = x_hat
            .iter()
            .map(|&b| Signal::Const(b))
            .chain(key_vars.iter().map(|kv| Signal::Lit(kv.pos())))
            .collect();
        let outs = encode_netlist_bound(nl, &bindings, const_false, sink)?;
        for (out, &yv) in outs.iter().zip(y_hat) {
            match out {
                Signal::Const(b) => {
                    if *b != yv {
                        // the observation contradicts a key-independent
                        // output; make the formula unsatisfiable
                        sink.add_clause([const_false]);
                    }
                }
                Signal::Lit(l) => sink.add_clause([if yv { *l } else { !*l }]),
            }
        }
    }
    Ok(())
}

/// Builds the full attack CNF for a given observation set (the
/// rebuild-per-iteration formulation). Returns
/// `(cnf, x_vars, k1_vars, k2_vars, diff_lit)`.
#[allow(clippy::type_complexity)]
fn build_attack_cnf(
    locked: &LockedNetlist,
    observations: &[(Vec<bool>, Vec<bool>)],
) -> Result<(Cnf, Vec<Var>, Vec<Var>, Vec<Var>, Lit), NetlistError> {
    let mut cnf = Cnf::new();
    let (x_vars, k1, k2, diff) = encode_attack_scaffold(locked, &mut cnf)?;
    for (x_hat, y_hat) in observations {
        encode_observation(locked, &mut cnf, &k1, &k2, x_hat, y_hat)?;
    }
    Ok((cnf, x_vars, k1, k2, diff))
}

/// Refines a found DIP into the *lexicographically smallest* DIP of the
/// current formula (bit-by-bit, preferring `false`), using incremental
/// assumption-only queries on the same solver.
///
/// This pins the attack's whole query transcript to a property of the
/// formula instead of solver heuristics, so the incremental and the
/// rebuild-per-iteration attacks walk identical DIP sequences and agree
/// on iteration counts exactly — the invariant the differential suite
/// and the benchmark check.
fn canonical_dip(solver: &mut Solver, x_vars: &[Var], diff: Lit, model: &[bool]) -> Vec<bool> {
    let mut assumptions = vec![diff];
    let mut current: Vec<bool> = x_vars.iter().map(|v| model[v.index()]).collect();
    for i in 0..x_vars.len() {
        if current[i] {
            // can this bit be false? (the current model only witnesses true)
            assumptions.push(x_vars[i].neg());
            match solver.solve_with_assumptions(&assumptions) {
                SatResult::Sat(m) => {
                    current[i] = false;
                    for (j, xj) in x_vars.iter().enumerate().skip(i + 1) {
                        current[j] = m[xj.index()];
                    }
                }
                SatResult::Unsat => {
                    assumptions.pop();
                    assumptions.push(x_vars[i].pos());
                }
            }
        } else {
            assumptions.push(x_vars[i].neg());
        }
    }
    current
}

/// Runs the SAT attack against `locked`, using `oracle` as the activated
/// chip (a function from functional inputs to outputs).
///
/// The attack is fully incremental: one netlist-pair encoding total, one
/// persistent solver for every DIP query and the final key extraction.
///
/// Returns a functionally correct key, or `None` if even the final
/// key-extraction step is unsatisfiable (cannot happen for consistently
/// locked designs).
///
/// # Errors
///
/// Propagates encoding errors (cyclic netlists).
pub fn sat_attack(
    locked: &LockedNetlist,
    oracle: impl Fn(&[bool]) -> Vec<bool>,
) -> Result<Option<SatAttackResult>, NetlistError> {
    let mut sp = seceda_trace::span("lock.sat_attack");
    sp.attr("key_width", locked.key_width());
    let mut solver = Solver::new(0);
    let (x_vars, k1, _k2, diff) = encode_attack_scaffold(locked, &mut solver)?;
    // a literal that is false in every model, for lowering residual
    // constants in the folded observation copies
    let const_false = solver.new_var().pos();
    solver.add_clause([!const_false]);
    let mut iterations = 0usize;
    let mut conflict_deltas: Vec<u64> = Vec::new();
    loop {
        // one histogram sample per DIP iteration (the final UNSAT
        // round included), so slow-iteration tails show up as p99
        let _iter_t = seceda_trace::hist_timer("sat.dip_iter_ns");
        let before = solver.num_conflicts;
        match solver.solve_with_assumptions(&[diff]) {
            SatResult::Sat(model) => {
                iterations += 1;
                seceda_trace::progress("lock.dip_iterations", iterations as u64);
                let x_hat = canonical_dip(&mut solver, &x_vars, diff, &model);
                conflict_deltas.push(solver.num_conflicts - before);
                let y_hat = oracle(&x_hat);
                encode_observation_folded(
                    locked,
                    &mut solver,
                    const_false,
                    &k1,
                    &_k2,
                    &x_hat,
                    &y_hat,
                )?;
            }
            SatResult::Unsat => {
                conflict_deltas.push(solver.num_conflicts - before);
                // no DIP left: extract any key satisfying all
                // observations from the SAME solver, just without the
                // diff assumption
                let before = solver.num_conflicts;
                let result = match solver.solve() {
                    SatResult::Sat(model) => {
                        conflict_deltas.push(solver.num_conflicts - before);
                        Some(SatAttackResult {
                            key: k1.iter().map(|v| model[v.index()]).collect(),
                            iterations,
                            conflicts: solver.num_conflicts,
                            conflict_deltas,
                        })
                    }
                    SatResult::Unsat => None,
                };
                seceda_trace::counter("lock.dip_iterations", iterations as u64);
                sp.attr("iterations", iterations);
                return Ok(result);
            }
        }
        assert!(
            iterations <= 1 << 16,
            "SAT attack runaway: too many iterations"
        );
    }
}

/// The original rebuild-per-iteration SAT attack: re-encodes the full
/// attack CNF and builds a fresh solver on every DIP iteration. Kept as
/// the differential-testing and benchmarking baseline for [`sat_attack`];
/// both must agree on iteration counts and recover functionally
/// equivalent keys.
///
/// # Errors
///
/// Propagates encoding errors (cyclic netlists).
pub fn sat_attack_rebuild(
    locked: &LockedNetlist,
    oracle: impl Fn(&[bool]) -> Vec<bool>,
) -> Result<Option<SatAttackResult>, NetlistError> {
    let mut observations: Vec<(Vec<bool>, Vec<bool>)> = Vec::new();
    let mut iterations = 0usize;
    let mut conflicts = 0u64;
    let mut conflict_deltas: Vec<u64> = Vec::new();
    loop {
        let (cnf, x_vars, _, _, diff) = build_attack_cnf(locked, &observations)?;
        let mut solver = Solver::from_cnf(&cnf);
        match solver.solve_with_assumptions(&[diff]) {
            SatResult::Sat(model) => {
                iterations += 1;
                let x_hat = canonical_dip(&mut solver, &x_vars, diff, &model);
                conflicts += solver.num_conflicts;
                conflict_deltas.push(solver.num_conflicts);
                let y_hat = oracle(&x_hat);
                observations.push((x_hat, y_hat));
            }
            SatResult::Unsat => {
                conflicts += solver.num_conflicts;
                conflict_deltas.push(solver.num_conflicts);
                // no DIP left: extract any key satisfying all observations
                let (cnf, _, k1, _, _) = build_attack_cnf(locked, &observations)?;
                let mut solver = Solver::from_cnf(&cnf);
                return Ok(match solver.solve() {
                    SatResult::Sat(model) => {
                        conflicts += solver.num_conflicts;
                        conflict_deltas.push(solver.num_conflicts);
                        Some(SatAttackResult {
                            key: k1.iter().map(|v| model[v.index()]).collect(),
                            iterations,
                            conflicts,
                            conflict_deltas,
                        })
                    }
                    SatResult::Unsat => None,
                });
            }
        }
        assert!(
            iterations <= 1 << 16,
            "SAT attack runaway: too many iterations"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::locking::{mux_lock, sfll_hd0, xor_lock};
    use seceda_netlist::{c17, majority};

    fn check_attack_recovers_function(locked: &LockedNetlist, original: &seceda_netlist::Netlist) {
        let oracle = |x: &[bool]| original.evaluate(x);
        let result = sat_attack(locked, oracle)
            .expect("attack runs")
            .expect("key found");
        // recovered key must be functionally correct on every input
        let n = locked.num_original_inputs;
        for pattern in 0..(1u32 << n) {
            let inputs: Vec<bool> = (0..n).map(|b| (pattern >> b) & 1 == 1).collect();
            assert_eq!(
                locked.evaluate_with_key(&inputs, &result.key),
                original.evaluate(&inputs),
                "recovered key wrong on {inputs:?}"
            );
        }
    }

    #[test]
    fn breaks_xor_locking_on_c17() {
        let nl = c17();
        let locked = xor_lock(&nl, 8, 7);
        check_attack_recovers_function(&locked, &nl);
    }

    #[test]
    fn breaks_mux_locking_on_majority() {
        let nl = majority();
        let locked = mux_lock(&nl, 4, 9);
        check_attack_recovers_function(&locked, &nl);
    }

    #[test]
    fn sfll_requires_many_more_queries() {
        // SFLL-HD0's resilience: each DIP rules out only the keys equal
        // to that DIP, so the attack needs ~2^n oracle queries, versus a
        // handful for XOR locking.
        let nl = c17();
        let xor = xor_lock(&nl, 8, 11);
        let sfll = sfll_hd0(&nl, &[true, false, true, false, true]);
        let oracle = |x: &[bool]| nl.evaluate(x);
        let xr = sat_attack(&xor, oracle).expect("runs").expect("key");
        let sr = sat_attack(&sfll, oracle).expect("runs").expect("key");
        assert!(
            sr.iterations > 4 * xr.iterations.max(1),
            "SFLL must cost far more queries: sfll {} vs xor {}",
            sr.iterations,
            xr.iterations
        );
        // and the SFLL iteration count approaches the input-space size
        assert!(
            sr.iterations >= 12,
            "SFLL-HD0 on 5 inputs needs on the order of 2^5 queries, got {}",
            sr.iterations
        );
    }

    #[test]
    fn attack_effort_grows_with_key_width() {
        let nl = c17();
        let small = xor_lock(&nl, 2, 21);
        let large = xor_lock(&nl, 16, 22);
        let oracle = |x: &[bool]| nl.evaluate(x);
        let rs = sat_attack(&small, oracle).expect("runs").expect("key");
        let rl = sat_attack(&large, oracle).expect("runs").expect("key");
        // more key gates mean at least as many (usually more) iterations
        assert!(rl.iterations >= rs.iterations);
    }

    #[test]
    fn conflict_deltas_cover_every_solve() {
        let nl = c17();
        let locked = xor_lock(&nl, 8, 7);
        let oracle = |x: &[bool]| nl.evaluate(x);
        let r = sat_attack(&locked, oracle).expect("runs").expect("key");
        // one delta per DIP query, one for the exhausted-DIP proof, one
        // for the key extraction
        assert_eq!(r.conflict_deltas.len(), r.iterations + 2);
        assert_eq!(r.conflicts, r.conflict_deltas.iter().sum::<u64>());
    }
}
