//! The oracle-guided SAT attack on logic locking \[33\].
//!
//! The attacker holds the locked netlist (reverse-engineered from layout)
//! and black-box access to an activated chip (the *oracle*). Each
//! iteration asks the solver for a *distinguishing input pattern* (DIP) —
//! an input on which two different keys produce different outputs — and
//! queries the oracle on it. The oracle response rules out at least one
//! equivalence class of wrong keys. When no DIP remains, any surviving
//! key is functionally correct.
//!
//! [`sat_attack`] keeps ONE live solver across the whole DIP loop, and
//! encodes through a structurally-hashed AIG ([`seceda_sat::Aig`]): the
//! two keyed copies share every node that does not depend on the key
//! (they read the same input nodes), the difference miter folds away
//! key-independent outputs at construction time, and each iteration's
//! two observation copies hash-cons against everything already built —
//! the persistent [`seceda_sat::AigCnf`] map emits clauses only for
//! genuinely new nodes. Learned clauses survive across iterations, so
//! later (harder) DIP queries start from everything the solver already
//! derived. Solving goes through a [`Portfolio`] of heuristic-diversified
//! solvers racing each query (sized from `SECEDA_PORTFOLIO` or the
//! machine's parallelism); every observable output — each DIP and the
//! final key — is canonicalized to the lexicographically smallest
//! satisfying assignment, so the attack's result is a property of the
//! formula regardless of encoding, portfolio size, or worker count. The
//! rebuild-from-scratch baseline is kept as [`sat_attack_rebuild`]
//! (direct Tseitin encoding, fresh solver per iteration) for
//! differential testing and benchmarking.

use crate::locking::LockedNetlist;
use seceda_netlist::NetlistError;
use seceda_sat::{
    encode_netlist, lower_netlist_bound, Aig, AigCnf, AigLit, Budget, Cnf, CnfBuilder, Lit,
    Portfolio, SatResult, SolveOutcome, Solver, StopReason, Var,
};

/// Outcome of a SAT attack.
#[derive(Debug, Clone, PartialEq)]
pub struct SatAttackResult {
    /// A functionally correct key (may differ from the designer's key
    /// bit-for-bit while producing identical behaviour).
    pub key: Vec<bool>,
    /// Number of DIP iterations (equals oracle queries).
    pub iterations: usize,
    /// Total solver conflicts across all iterations, a proxy for attack
    /// effort.
    pub conflicts: u64,
    /// Solver conflicts spent in each DIP iteration (the final entry is
    /// the key-extraction solve).
    pub conflict_deltas: Vec<u64>,
    /// Problem clauses in the final solver state: for [`sat_attack`] the
    /// AIG-encoded scaffold plus every observation copy; for
    /// [`sat_attack_rebuild`] the last direct re-encoding.
    pub clauses: usize,
    /// Number of racing portfolio members (1 for the rebuild baseline).
    pub portfolio_k: usize,
}

/// Everything a suspended [`sat_attack_budgeted`] run needs to resume on
/// a fresh solver: the accumulated oracle observations plus the
/// transcript bookkeeping. The observations *are* the attack's state —
/// the DIP sequence is a property of the formula (lex-min
/// canonicalization), so replaying the observations into a fresh
/// scaffold reproduces the exact formula the suspended run held, and the
/// resumed run continues bit-identically to a never-suspended one.
#[derive(Debug, Clone, PartialEq)]
pub struct SatAttackCheckpoint {
    /// Accumulated `(x_hat, y_hat)` oracle observations, in DIP order.
    pub observations: Vec<(Vec<bool>, Vec<bool>)>,
    /// Completed DIP iterations (equals `observations.len()`).
    pub iterations: usize,
    /// Total solver conflicts spent so far, *including* effort lost to
    /// the suspended partial solve (which a resume redoes from scratch).
    pub conflicts: u64,
    /// Per-completed-iteration conflict deltas (see
    /// [`SatAttackResult::conflict_deltas`]); the suspended solve has no
    /// entry.
    pub conflict_deltas: Vec<u64>,
}

/// Result of a budgeted SAT attack: done, provably key-free, or
/// suspended with a resumable checkpoint.
#[derive(Debug, Clone, PartialEq)]
pub enum SatAttackOutcome {
    /// The attack finished and recovered a key.
    Complete(SatAttackResult),
    /// The attack finished: no key satisfies the observations (cannot
    /// happen for consistently locked designs).
    NoKey,
    /// The budget ran out mid-attack. Resume by passing the checkpoint
    /// back to [`sat_attack_budgeted`] with a fresh budget.
    Suspended {
        /// State to resume from.
        checkpoint: SatAttackCheckpoint,
        /// Which limit stopped the run.
        reason: StopReason,
    },
}

/// Encodes the attack scaffolding — two copies of the locked circuit
/// sharing X but with independent keys, plus the difference miter — into
/// any clause sink. Returns `(x_vars, k1_vars, k2_vars, diff_lit)`.
#[allow(clippy::type_complexity)]
fn encode_attack_scaffold<B: CnfBuilder>(
    locked: &LockedNetlist,
    sink: &mut B,
) -> Result<(Vec<Var>, Vec<Var>, Vec<Var>, Lit), NetlistError> {
    let nl = &locked.netlist;
    let nx = locked.num_original_inputs;
    let nk = locked.key_width();
    let enc1 = encode_netlist(nl, sink)?;
    let enc2 = encode_netlist(nl, sink)?;
    // share functional inputs
    for i in 0..nx {
        sink.gate_buf(enc1.input_vars[i].pos(), enc2.input_vars[i].pos());
    }
    // diff literal over outputs
    let mut diffs = Vec::new();
    for (o1, o2) in enc1.output_vars.iter().zip(&enc2.output_vars) {
        let d = sink.new_var().pos();
        sink.gate_xor(d, o1.pos(), o2.pos());
        diffs.push(d);
    }
    let diff = sink.new_var().pos();
    for &d in &diffs {
        sink.add_clause([diff, !d]);
    }
    let mut big = diffs;
    big.push(!diff);
    sink.add_clause(big);

    let k1: Vec<_> = enc1.input_vars[nx..nx + nk].to_vec();
    let k2: Vec<_> = enc2.input_vars[nx..nx + nk].to_vec();
    let x_vars = enc1.input_vars[..nx].to_vec();
    Ok((x_vars, k1, k2, diff))
}

/// Appends one observation `(x_hat, y_hat)` to the attack encoding: a
/// fresh constrained circuit copy per key, with inputs pinned to `x_hat`,
/// outputs pinned to `y_hat`, and key inputs tied to the key variables.
fn encode_observation<B: CnfBuilder>(
    locked: &LockedNetlist,
    sink: &mut B,
    k1: &[Var],
    k2: &[Var],
    x_hat: &[bool],
    y_hat: &[bool],
) -> Result<(), NetlistError> {
    let nl = &locked.netlist;
    let nx = locked.num_original_inputs;
    for key_vars in [k1, k2] {
        let enc = encode_netlist(nl, sink)?;
        for (i, &xv) in x_hat.iter().enumerate() {
            sink.add_clause([enc.input_vars[i].lit(xv)]);
        }
        for (j, kv) in key_vars.iter().enumerate() {
            sink.gate_buf(enc.input_vars[nx + j].pos(), kv.pos());
        }
        for (o, &yv) in enc.output_vars.iter().zip(y_hat) {
            sink.add_clause([o.lit(yv)]);
        }
    }
    Ok(())
}

/// The persistent AIG-backed attack encoding state: one node table, one
/// node→literal map, and the input nodes for X and both key copies, all
/// shared across the scaffold and every observation copy.
struct AigScaffold {
    aig: Aig,
    map: AigCnf,
    const_false: Lit,
    x_vars: Vec<Var>,
    k1: Vec<Var>,
    k1_nodes: Vec<AigLit>,
    k2_nodes: Vec<AigLit>,
    diff: Lit,
}

/// Encodes the attack scaffolding through a structurally-hashed AIG:
/// both keyed copies are lowered over the *same* X input nodes, so every
/// key-independent cone is built (and encoded to CNF) exactly once, and
/// the difference miter folds to constant-false for outputs the key
/// cannot influence. `const_false` must already be pinned false in
/// `sink`.
fn encode_attack_scaffold_aig<B: CnfBuilder>(
    locked: &LockedNetlist,
    const_false: Lit,
    sink: &mut B,
) -> Result<AigScaffold, NetlistError> {
    let nl = &locked.netlist;
    let nx = locked.num_original_inputs;
    let nk = locked.key_width();
    let mut aig = Aig::new();
    let mut map = AigCnf::new(const_false);
    let x_vars: Vec<Var> = (0..nx).map(|_| sink.new_var()).collect();
    let k1: Vec<Var> = (0..nk).map(|_| sink.new_var()).collect();
    let k2: Vec<Var> = (0..nk).map(|_| sink.new_var()).collect();
    let x_nodes: Vec<AigLit> = x_vars.iter().map(|v| aig.input(v.pos())).collect();
    let k1_nodes: Vec<AigLit> = k1.iter().map(|v| aig.input(v.pos())).collect();
    let k2_nodes: Vec<AigLit> = k2.iter().map(|v| aig.input(v.pos())).collect();

    let bind1: Vec<AigLit> = x_nodes.iter().chain(&k1_nodes).copied().collect();
    let outs1 = lower_netlist_bound(nl, &mut aig, &bind1, sink)?;
    let bind2: Vec<AigLit> = x_nodes.iter().chain(&k2_nodes).copied().collect();
    let outs2 = lower_netlist_bound(nl, &mut aig, &bind2, sink)?;

    // difference miter, folded in the AIG: key-independent outputs are
    // the same node in both copies and vanish as XOR(n, n) = false
    let mut diff_edge = AigLit::FALSE;
    for (&o1, &o2) in outs1.iter().zip(&outs2) {
        let d = aig.xor(o1, o2);
        diff_edge = aig.or(diff_edge, d);
    }
    let diff = map.lit_of(&aig, diff_edge, sink);
    Ok(AigScaffold {
        aig,
        map,
        const_false,
        x_vars,
        k1,
        k1_nodes,
        k2_nodes,
        diff,
    })
}

/// Appends one observation `(x_hat, y_hat)` with the functional inputs
/// bound to constants and folded through the AIG: only the key-dependent
/// cone survives as nodes, and of those only the nodes not already
/// hash-consed by earlier iterations cost clauses. Semantically
/// identical to [`encode_observation`] — both pin the same function of
/// the key variables — which is what keeps the lex-min DIP transcript
/// (and hence the iteration count) in exact agreement with the rebuild
/// baseline.
fn encode_observation_aig<B: CnfBuilder>(
    locked: &LockedNetlist,
    sc: &mut AigScaffold,
    sink: &mut B,
    x_hat: &[bool],
    y_hat: &[bool],
) -> Result<(), NetlistError> {
    let nl = &locked.netlist;
    for copy in 0..2 {
        let key_nodes = if copy == 0 {
            &sc.k1_nodes
        } else {
            &sc.k2_nodes
        };
        let bindings: Vec<AigLit> = x_hat
            .iter()
            .map(|&b| AigLit::constant(b))
            .chain(key_nodes.iter().copied())
            .collect();
        let outs = lower_netlist_bound(nl, &mut sc.aig, &bindings, sink)?;
        for (&out, &yv) in outs.iter().zip(y_hat) {
            match out.as_const() {
                Some(b) => {
                    if b != yv {
                        // the observation contradicts a key-independent
                        // output; make the formula unsatisfiable
                        sink.add_clause([sc.const_false]);
                    }
                }
                None => {
                    let l = sc.map.lit_of(&sc.aig, out, sink);
                    sink.add_clause([if yv { l } else { !l }]);
                }
            }
        }
    }
    Ok(())
}

/// Builds the full attack CNF for a given observation set (the
/// rebuild-per-iteration formulation). Returns
/// `(cnf, x_vars, k1_vars, k2_vars, diff_lit)`.
#[allow(clippy::type_complexity)]
fn build_attack_cnf(
    locked: &LockedNetlist,
    observations: &[(Vec<bool>, Vec<bool>)],
) -> Result<(Cnf, Vec<Var>, Vec<Var>, Vec<Var>, Lit), NetlistError> {
    let mut cnf = Cnf::new();
    let (x_vars, k1, k2, diff) = encode_attack_scaffold(locked, &mut cnf)?;
    for (x_hat, y_hat) in observations {
        encode_observation(locked, &mut cnf, &k1, &k2, x_hat, y_hat)?;
    }
    Ok((cnf, x_vars, k1, k2, diff))
}

/// Refines a satisfying model into the *lexicographically smallest*
/// assignment of `vars` consistent with `base` (bit-by-bit, preferring
/// `false`), using incremental assumption-only queries.
///
/// The result is a property of the formula alone — independent of the
/// starting model, the solver's heuristic state, and (for a portfolio)
/// which member answered. Canonicalizing both the DIPs and the final key
/// pins the attack's whole observable output to the formula, so the
/// incremental and the rebuild-per-iteration attacks walk identical DIP
/// sequences, agree on iteration counts exactly, and recover the same
/// key bit-for-bit — the invariants the differential suite and the
/// benchmark check, for any worker count and portfolio size.
fn lex_min_model(
    solve: &mut impl FnMut(&[Lit]) -> SatResult,
    vars: &[Var],
    base: &[Lit],
    model: &[bool],
) -> Vec<bool> {
    lex_min_model_budgeted(&mut |a| solve(a).into(), vars, base, model)
        .unwrap_or_else(|reason| unreachable!("unbudgeted lex-min suspended: {reason}"))
}

/// Budget-aware [`lex_min_model`]: identical bit-by-bit refinement, but
/// each query may come back [`SolveOutcome::Indeterminate`], in which
/// case the whole refinement aborts with the stop reason (a partially
/// minimized assignment is NOT canonical and must not leak into the DIP
/// transcript).
fn lex_min_model_budgeted(
    solve: &mut impl FnMut(&[Lit]) -> SolveOutcome,
    vars: &[Var],
    base: &[Lit],
    model: &[bool],
) -> Result<Vec<bool>, StopReason> {
    let mut assumptions = base.to_vec();
    let mut current: Vec<bool> = vars.iter().map(|v| model[v.index()]).collect();
    for i in 0..vars.len() {
        if current[i] {
            // can this bit be false? (the current model only witnesses true)
            assumptions.push(vars[i].neg());
            match solve(&assumptions) {
                SolveOutcome::Sat(m) => {
                    current[i] = false;
                    for (j, vj) in vars.iter().enumerate().skip(i + 1) {
                        current[j] = m[vj.index()];
                    }
                }
                SolveOutcome::Unsat => {
                    assumptions.pop();
                    assumptions.push(vars[i].pos());
                }
                SolveOutcome::Indeterminate(reason) => return Err(reason),
            }
        } else {
            assumptions.push(vars[i].neg());
        }
    }
    Ok(current)
}

/// Runs the SAT attack against `locked`, using `oracle` as the activated
/// chip (a function from functional inputs to outputs).
///
/// The attack is fully incremental: one structurally-hashed AIG and one
/// persistent solver portfolio carry the scaffold, every observation
/// copy, every DIP query, and the final key extraction.
///
/// Returns a functionally correct key, or `None` if even the final
/// key-extraction step is unsatisfiable (cannot happen for consistently
/// locked designs).
///
/// # Errors
///
/// Propagates encoding errors (cyclic netlists).
pub fn sat_attack(
    locked: &LockedNetlist,
    oracle: impl Fn(&[bool]) -> Vec<bool>,
) -> Result<Option<SatAttackResult>, NetlistError> {
    match sat_attack_budgeted(locked, oracle, &Budget::unlimited(), None)? {
        SatAttackOutcome::Complete(r) => Ok(Some(r)),
        SatAttackOutcome::NoKey => Ok(None),
        // unlimited budgets skip every budget check (and chaos only
        // injects exhaustion into limited budgets), so suspension is
        // impossible here
        SatAttackOutcome::Suspended { reason, .. } => {
            unreachable!("unbudgeted SAT attack suspended: {reason}")
        }
    }
}

/// Budgeted, checkpointable SAT attack.
///
/// Runs the same incremental lex-min-canonicalized attack as
/// [`sat_attack`], but threads `budget` through every constituent solve:
/// the **conflict cap meters the whole attack** (each solve gets what the
/// previous ones left over, by accumulated winning-member conflicts), the
/// **propagation cap applies per constituent solve**, and the deadline /
/// cancel flag bound the entire computation. When the budget runs out the
/// attack returns [`SatAttackOutcome::Suspended`] with a
/// [`SatAttackCheckpoint`] holding every completed observation; passing
/// that checkpoint back (with a fresh budget) resumes on a fresh solver
/// by replaying the observations into a new scaffold.
///
/// Because every DIP and the key are lex-min canonical — properties of
/// the formula, not of solver state — a suspended-and-resumed attack
/// recovers **bit-identical** iteration counts, DIP sequences, and keys
/// to a straight-through run. The interrupted solve's partial effort is
/// discarded (it is counted in [`SatAttackCheckpoint::conflicts`] but has
/// no `conflict_deltas` entry, and the resume redoes that solve from
/// scratch), so resuming with an equally tiny conflict budget can make no
/// progress; resume with a larger or unlimited budget.
///
/// # Errors
///
/// Propagates encoding errors (cyclic netlists).
pub fn sat_attack_budgeted(
    locked: &LockedNetlist,
    oracle: impl Fn(&[bool]) -> Vec<bool>,
    budget: &Budget,
    resume: Option<&SatAttackCheckpoint>,
) -> Result<SatAttackOutcome, NetlistError> {
    let mut sp = seceda_trace::span("lock.sat_attack");
    sp.attr("key_width", locked.key_width());
    sp.attr("budgeted", budget.is_limited());
    sp.attr("resumed", resume.is_some());
    let mut solver = Portfolio::from_env(0);
    sp.attr("portfolio_k", solver.k());
    // a literal that is false in every model, for lowering AIG constants
    let const_false = solver.new_var().pos();
    solver.add_clause([!const_false]);
    let mut sc = encode_attack_scaffold_aig(locked, const_false, &mut solver)?;
    let diff = sc.diff;
    let mut observations: Vec<(Vec<bool>, Vec<bool>)> =
        resume.map(|c| c.observations.clone()).unwrap_or_default();
    let mut iterations = resume.map_or(0, |c| c.iterations);
    let mut conflict_deltas: Vec<u64> = resume.map_or_else(Vec::new, |c| c.conflict_deltas.clone());
    let prior_conflicts = resume.map_or(0, |c| c.conflicts);
    // replay checkpointed observations into the fresh scaffold; the
    // hash-consed AIG reproduces the suspended run's formula exactly
    for (x_hat, y_hat) in &observations {
        encode_observation_aig(locked, &mut sc, &mut solver, x_hat, y_hat)?;
    }
    // the fresh portfolio starts at zero conflicts, so its aggregate
    // counter IS this run's spent-conflict meter
    let suspend = |solver: &Portfolio,
                   observations: Vec<(Vec<bool>, Vec<bool>)>,
                   iterations: usize,
                   conflict_deltas: Vec<u64>,
                   reason: StopReason| {
        seceda_trace::counter("lock.attack_suspended", 1);
        SatAttackOutcome::Suspended {
            checkpoint: SatAttackCheckpoint {
                observations,
                iterations,
                conflicts: prior_conflicts + solver.num_conflicts,
                conflict_deltas,
            },
            reason,
        }
    };
    loop {
        // one histogram sample per DIP iteration (the final UNSAT
        // round included), so slow-iteration tails show up as p99
        let _iter_t = seceda_trace::hist_timer("sat.dip_iter_ns");
        let before = solver.num_conflicts;
        let sub = budget.minus(solver.num_conflicts, 0);
        match solver.solve_budgeted(&[diff], &sub) {
            SolveOutcome::Sat(model) => {
                let x_hat = match lex_min_model_budgeted(
                    &mut |a| {
                        let sub = budget.minus(solver.num_conflicts, 0);
                        solver.solve_budgeted(a, &sub)
                    },
                    &sc.x_vars,
                    &[diff],
                    &model,
                ) {
                    Ok(x_hat) => x_hat,
                    Err(reason) => {
                        // the iteration did not complete: no delta, no
                        // observation, no iteration count
                        sp.attr("result", "suspended");
                        if seceda_trace::enabled() {
                            sp.attr("stop_reason", format!("{reason}"));
                        }
                        return Ok(suspend(
                            &solver,
                            observations,
                            iterations,
                            conflict_deltas,
                            reason,
                        ));
                    }
                };
                iterations += 1;
                seceda_trace::progress("lock.dip_iterations", iterations as u64);
                conflict_deltas.push(solver.num_conflicts - before);
                let y_hat = oracle(&x_hat);
                encode_observation_aig(locked, &mut sc, &mut solver, &x_hat, &y_hat)?;
                observations.push((x_hat, y_hat));
            }
            SolveOutcome::Unsat => {
                conflict_deltas.push(solver.num_conflicts - before);
                // no DIP left: extract any key satisfying all
                // observations from the SAME solver, just without the
                // diff assumption
                let before = solver.num_conflicts;
                let sub = budget.minus(solver.num_conflicts, 0);
                let result = match solver.solve_budgeted(&[], &sub) {
                    SolveOutcome::Sat(model) => {
                        // canonicalize to the lex-min key so the result
                        // is a property of the formula, not of which
                        // portfolio member answered first
                        let key = match lex_min_model_budgeted(
                            &mut |a| {
                                let sub = budget.minus(solver.num_conflicts, 0);
                                solver.solve_budgeted(a, &sub)
                            },
                            &sc.k1,
                            &[],
                            &model,
                        ) {
                            Ok(key) => key,
                            Err(reason) => {
                                // withdraw the exhausted-DIP delta: the
                                // resume redoes that proof and the
                                // extraction together
                                conflict_deltas.pop();
                                sp.attr("result", "suspended");
                                if seceda_trace::enabled() {
                                    sp.attr("stop_reason", format!("{reason}"));
                                }
                                return Ok(suspend(
                                    &solver,
                                    observations,
                                    iterations,
                                    conflict_deltas,
                                    reason,
                                ));
                            }
                        };
                        conflict_deltas.push(solver.num_conflicts - before);
                        SatAttackOutcome::Complete(SatAttackResult {
                            key,
                            iterations,
                            conflicts: prior_conflicts + solver.num_conflicts,
                            conflict_deltas,
                            clauses: solver.primary().num_problem_clauses(),
                            portfolio_k: solver.k(),
                        })
                    }
                    SolveOutcome::Unsat => SatAttackOutcome::NoKey,
                    SolveOutcome::Indeterminate(reason) => {
                        conflict_deltas.pop();
                        sp.attr("result", "suspended");
                        if seceda_trace::enabled() {
                            sp.attr("stop_reason", format!("{reason}"));
                        }
                        return Ok(suspend(
                            &solver,
                            observations,
                            iterations,
                            conflict_deltas,
                            reason,
                        ));
                    }
                };
                seceda_trace::counter("lock.dip_iterations", iterations as u64);
                seceda_trace::counter("sat.aig_nodes", sc.aig.num_nodes() as u64);
                seceda_trace::counter("sat.aig_hash_hits", sc.aig.hash_hits());
                sp.attr("iterations", iterations);
                sp.attr("aig_nodes", sc.aig.num_nodes());
                return Ok(result);
            }
            SolveOutcome::Indeterminate(reason) => {
                sp.attr("result", "suspended");
                if seceda_trace::enabled() {
                    sp.attr("stop_reason", format!("{reason}"));
                }
                return Ok(suspend(
                    &solver,
                    observations,
                    iterations,
                    conflict_deltas,
                    reason,
                ));
            }
        }
        assert!(
            iterations <= 1 << 16,
            "SAT attack runaway: too many iterations"
        );
    }
}

/// The original rebuild-per-iteration SAT attack: re-encodes the full
/// attack CNF and builds a fresh solver on every DIP iteration. Kept as
/// the differential-testing and benchmarking baseline for [`sat_attack`];
/// both must agree on iteration counts and recover functionally
/// equivalent keys.
///
/// # Errors
///
/// Propagates encoding errors (cyclic netlists).
pub fn sat_attack_rebuild(
    locked: &LockedNetlist,
    oracle: impl Fn(&[bool]) -> Vec<bool>,
) -> Result<Option<SatAttackResult>, NetlistError> {
    let mut observations: Vec<(Vec<bool>, Vec<bool>)> = Vec::new();
    let mut iterations = 0usize;
    let mut conflicts = 0u64;
    let mut conflict_deltas: Vec<u64> = Vec::new();
    loop {
        let (cnf, x_vars, _, _, diff) = build_attack_cnf(locked, &observations)?;
        let mut solver = Solver::from_cnf(&cnf);
        match solver.solve_with_assumptions(&[diff]) {
            SatResult::Sat(model) => {
                iterations += 1;
                let x_hat = lex_min_model(
                    &mut |a| solver.solve_with_assumptions(a),
                    &x_vars,
                    &[diff],
                    &model,
                );
                conflicts += solver.num_conflicts;
                conflict_deltas.push(solver.num_conflicts);
                let y_hat = oracle(&x_hat);
                observations.push((x_hat, y_hat));
            }
            SatResult::Unsat => {
                conflicts += solver.num_conflicts;
                conflict_deltas.push(solver.num_conflicts);
                // no DIP left: extract any key satisfying all observations
                let (cnf, _, k1, _, _) = build_attack_cnf(locked, &observations)?;
                let mut solver = Solver::from_cnf(&cnf);
                return Ok(match solver.solve() {
                    SatResult::Sat(model) => {
                        // same lex-min canonicalization as the
                        // incremental attack: both walk identical DIP
                        // transcripts over identical observation sets,
                        // so the canonical keys agree bit-for-bit
                        let key = lex_min_model(
                            &mut |a| solver.solve_with_assumptions(a),
                            &k1,
                            &[],
                            &model,
                        );
                        conflicts += solver.num_conflicts;
                        conflict_deltas.push(solver.num_conflicts);
                        Some(SatAttackResult {
                            key,
                            iterations,
                            conflicts,
                            conflict_deltas,
                            clauses: cnf.clauses().len(),
                            portfolio_k: 1,
                        })
                    }
                    SatResult::Unsat => None,
                });
            }
        }
        assert!(
            iterations <= 1 << 16,
            "SAT attack runaway: too many iterations"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::locking::{mux_lock, sfll_hd0, xor_lock};
    use seceda_netlist::{c17, majority};

    fn check_attack_recovers_function(locked: &LockedNetlist, original: &seceda_netlist::Netlist) {
        let oracle = |x: &[bool]| original.evaluate(x);
        let result = sat_attack(locked, oracle)
            .expect("attack runs")
            .expect("key found");
        // recovered key must be functionally correct on every input
        let n = locked.num_original_inputs;
        for pattern in 0..(1u32 << n) {
            let inputs: Vec<bool> = (0..n).map(|b| (pattern >> b) & 1 == 1).collect();
            assert_eq!(
                locked.evaluate_with_key(&inputs, &result.key),
                original.evaluate(&inputs),
                "recovered key wrong on {inputs:?}"
            );
        }
    }

    #[test]
    fn breaks_xor_locking_on_c17() {
        let nl = c17();
        let locked = xor_lock(&nl, 8, 7);
        check_attack_recovers_function(&locked, &nl);
    }

    #[test]
    fn breaks_mux_locking_on_majority() {
        let nl = majority();
        let locked = mux_lock(&nl, 4, 9);
        check_attack_recovers_function(&locked, &nl);
    }

    #[test]
    fn sfll_requires_many_more_queries() {
        // SFLL-HD0's resilience: each DIP rules out only the keys equal
        // to that DIP, so the attack needs ~2^n oracle queries, versus a
        // handful for XOR locking.
        let nl = c17();
        let xor = xor_lock(&nl, 8, 11);
        let sfll = sfll_hd0(&nl, &[true, false, true, false, true]);
        let oracle = |x: &[bool]| nl.evaluate(x);
        let xr = sat_attack(&xor, oracle).expect("runs").expect("key");
        let sr = sat_attack(&sfll, oracle).expect("runs").expect("key");
        assert!(
            sr.iterations > 4 * xr.iterations.max(1),
            "SFLL must cost far more queries: sfll {} vs xor {}",
            sr.iterations,
            xr.iterations
        );
        // and the SFLL iteration count approaches the input-space size
        assert!(
            sr.iterations >= 12,
            "SFLL-HD0 on 5 inputs needs on the order of 2^5 queries, got {}",
            sr.iterations
        );
    }

    #[test]
    fn attack_effort_grows_with_key_width() {
        let nl = c17();
        let small = xor_lock(&nl, 2, 21);
        let large = xor_lock(&nl, 16, 22);
        let oracle = |x: &[bool]| nl.evaluate(x);
        let rs = sat_attack(&small, oracle).expect("runs").expect("key");
        let rl = sat_attack(&large, oracle).expect("runs").expect("key");
        // more key gates mean at least as many (usually more) iterations
        assert!(rl.iterations >= rs.iterations);
    }

    /// Drives a budgeted attack to completion by repeatedly suspending
    /// under `step` conflicts and resuming with a doubled budget until it
    /// finishes, recording how many suspensions occurred.
    fn run_with_suspensions(
        locked: &LockedNetlist,
        oracle: impl Fn(&[bool]) -> Vec<bool> + Copy,
        step: u64,
    ) -> (SatAttackResult, usize) {
        let mut checkpoint: Option<SatAttackCheckpoint> = None;
        let mut budget_conflicts = step;
        let mut suspensions = 0usize;
        loop {
            let budget = Budget::unlimited().with_max_conflicts(budget_conflicts);
            match sat_attack_budgeted(locked, oracle, &budget, checkpoint.as_ref())
                .expect("attack runs")
            {
                SatAttackOutcome::Complete(r) => return (r, suspensions),
                SatAttackOutcome::NoKey => panic!("consistently locked design has a key"),
                SatAttackOutcome::Suspended {
                    checkpoint: cp,
                    reason,
                } => {
                    assert_eq!(reason, StopReason::Conflicts);
                    assert_eq!(cp.iterations, cp.observations.len());
                    assert_eq!(cp.conflict_deltas.len(), cp.iterations);
                    suspensions += 1;
                    assert!(suspensions < 64, "attack never finishes");
                    checkpoint = Some(cp);
                    // grow the budget so the redone solve eventually fits
                    budget_conflicts = budget_conflicts.saturating_mul(2);
                }
            }
        }
    }

    fn check_resume_matches_straight_through(
        locked: &LockedNetlist,
        original: &seceda_netlist::Netlist,
    ) {
        let oracle = |x: &[bool]| original.evaluate(x);
        let straight = sat_attack(locked, oracle)
            .expect("attack runs")
            .expect("key found");
        let (resumed, suspensions) = run_with_suspensions(locked, oracle, 1);
        assert!(
            suspensions > 0,
            "a 1-conflict budget must suspend at least once"
        );
        // bit-identical transcript: same key, same DIP count
        assert_eq!(resumed.key, straight.key);
        assert_eq!(resumed.iterations, straight.iterations);
        assert_eq!(resumed.conflict_deltas.len(), resumed.iterations + 2);
        // suspended partial solves are counted as effort but re-done, so
        // total conflicts can only be >= the per-iteration deltas
        assert!(resumed.conflicts >= resumed.conflict_deltas.iter().sum::<u64>());
    }

    #[test]
    fn budgeted_attack_suspends_and_resumes_bit_identically() {
        let nl = c17();
        let locked = xor_lock(&nl, 8, 7);
        check_resume_matches_straight_through(&locked, &nl);
    }

    #[test]
    fn budgeted_attack_resumes_on_parsed_bench_host() {
        let text = "\
# c17 from the ISCAS-85 suite
INPUT(G1)
INPUT(G2)
INPUT(G3)
INPUT(G6)
INPUT(G7)
OUTPUT(G22)
OUTPUT(G23)
G10 = NAND(G1, G3)
G11 = NAND(G3, G6)
G16 = NAND(G2, G11)
G19 = NAND(G11, G7)
G22 = NAND(G10, G16)
G23 = NAND(G16, G19)
";
        let nl = seceda_netlist::parse_bench(text).expect("c17 parses");
        let locked = xor_lock(&nl, 6, 13);
        check_resume_matches_straight_through(&locked, &nl);
    }

    #[test]
    fn zero_conflict_budget_suspends_immediately_with_empty_checkpoint() {
        let nl = c17();
        let locked = xor_lock(&nl, 8, 7);
        let oracle = |x: &[bool]| nl.evaluate(x);
        let budget = Budget::unlimited().with_max_conflicts(0);
        match sat_attack_budgeted(&locked, oracle, &budget, None).expect("attack runs") {
            SatAttackOutcome::Suspended { checkpoint, reason } => {
                assert_eq!(reason, StopReason::Conflicts);
                assert_eq!(checkpoint.iterations, 0);
                assert!(checkpoint.observations.is_empty());
                assert!(checkpoint.conflict_deltas.is_empty());
            }
            other => panic!("expected suspension, got {other:?}"),
        }
    }

    #[test]
    fn unlimited_budget_matches_unbudgeted_attack() {
        let nl = c17();
        let locked = xor_lock(&nl, 8, 7);
        let oracle = |x: &[bool]| nl.evaluate(x);
        let plain = sat_attack(&locked, oracle).expect("runs").expect("key");
        match sat_attack_budgeted(&locked, oracle, &Budget::unlimited(), None).expect("runs") {
            SatAttackOutcome::Complete(r) => {
                assert_eq!(r.key, plain.key);
                assert_eq!(r.iterations, plain.iterations);
                assert_eq!(r.conflict_deltas, plain.conflict_deltas);
            }
            other => panic!("expected completion, got {other:?}"),
        }
    }

    #[test]
    fn conflict_deltas_cover_every_solve() {
        let nl = c17();
        let locked = xor_lock(&nl, 8, 7);
        let oracle = |x: &[bool]| nl.evaluate(x);
        let r = sat_attack(&locked, oracle).expect("runs").expect("key");
        // one delta per DIP query, one for the exhausted-DIP proof, one
        // for the key extraction
        assert_eq!(r.conflict_deltas.len(), r.iterations + 2);
        assert_eq!(r.conflicts, r.conflict_deltas.iter().sum::<u64>());
    }
}
