//! The oracle-guided SAT attack on logic locking \[33\].
//!
//! The attacker holds the locked netlist (reverse-engineered from layout)
//! and black-box access to an activated chip (the *oracle*). Each
//! iteration asks the solver for a *distinguishing input pattern* (DIP) —
//! an input on which two different keys produce different outputs — and
//! queries the oracle on it. The oracle response rules out at least one
//! equivalence class of wrong keys. When no DIP remains, any surviving
//! key is functionally correct.

use crate::locking::LockedNetlist;
use seceda_netlist::NetlistError;
use seceda_sat::{encode_netlist, Cnf, Lit, SatResult, Solver};

/// Outcome of a SAT attack.
#[derive(Debug, Clone, PartialEq)]
pub struct SatAttackResult {
    /// A functionally correct key (may differ from the designer's key
    /// bit-for-bit while producing identical behaviour).
    pub key: Vec<bool>,
    /// Number of DIP iterations (equals oracle queries).
    pub iterations: usize,
    /// Total solver conflicts across all iterations, a proxy for attack
    /// effort.
    pub conflicts: u64,
}

/// Builds the attack CNF: two copies of the locked circuit sharing X but
/// with independent keys, plus one constrained copy per recorded
/// (input, output) oracle observation for each key. Returns
/// `(cnf, x_vars, k1_vars, k2_vars, diff_lit)`.
#[allow(clippy::type_complexity)]
fn build_attack_cnf(
    locked: &LockedNetlist,
    observations: &[(Vec<bool>, Vec<bool>)],
) -> Result<
    (
        Cnf,
        Vec<seceda_sat::Var>,
        Vec<seceda_sat::Var>,
        Vec<seceda_sat::Var>,
        Lit,
    ),
    NetlistError,
> {
    let nl = &locked.netlist;
    let nx = locked.num_original_inputs;
    let nk = locked.key_width();
    let mut cnf = Cnf::new();
    let enc1 = encode_netlist(nl, &mut cnf)?;
    let enc2 = encode_netlist(nl, &mut cnf)?;
    // share functional inputs
    for i in 0..nx {
        cnf.gate_buf(enc1.input_vars[i].pos(), enc2.input_vars[i].pos());
    }
    // diff literal over outputs
    let mut diffs = Vec::new();
    for (o1, o2) in enc1.output_vars.iter().zip(&enc2.output_vars) {
        let d = cnf.new_var().pos();
        cnf.gate_xor(d, o1.pos(), o2.pos());
        diffs.push(d);
    }
    let diff = cnf.new_var().pos();
    for &d in &diffs {
        cnf.add_clause([diff, !d]);
    }
    let mut big = diffs;
    big.push(!diff);
    cnf.add_clause(big);

    let k1: Vec<_> = enc1.input_vars[nx..nx + nk].to_vec();
    let k2: Vec<_> = enc2.input_vars[nx..nx + nk].to_vec();

    // each observation constrains both keys via fresh circuit copies
    for (x_hat, y_hat) in observations {
        for key_vars in [&k1, &k2] {
            let enc = encode_netlist(nl, &mut cnf)?;
            for (i, &xv) in x_hat.iter().enumerate() {
                cnf.add_clause([enc.input_vars[i].lit(xv)]);
            }
            for (j, kv) in key_vars.iter().enumerate() {
                cnf.gate_buf(enc.input_vars[nx + j].pos(), kv.pos());
            }
            for (o, &yv) in enc.output_vars.iter().zip(y_hat) {
                cnf.add_clause([o.lit(yv)]);
            }
        }
    }
    let x_vars = enc1.input_vars[..nx].to_vec();
    Ok((cnf, x_vars, k1, k2, diff))
}

/// Runs the SAT attack against `locked`, using `oracle` as the activated
/// chip (a function from functional inputs to outputs).
///
/// Returns a functionally correct key, or `None` if even the final
/// key-extraction step is unsatisfiable (cannot happen for consistently
/// locked designs).
///
/// # Errors
///
/// Propagates encoding errors (cyclic netlists).
pub fn sat_attack(
    locked: &LockedNetlist,
    oracle: impl Fn(&[bool]) -> Vec<bool>,
) -> Result<Option<SatAttackResult>, NetlistError> {
    let mut observations: Vec<(Vec<bool>, Vec<bool>)> = Vec::new();
    let mut iterations = 0usize;
    let mut conflicts = 0u64;
    loop {
        let (cnf, x_vars, _, _, diff) = build_attack_cnf(locked, &observations)?;
        let mut solver = Solver::from_cnf(&cnf);
        match solver.solve_with_assumptions(&[diff]) {
            SatResult::Sat(model) => {
                conflicts += solver.num_conflicts;
                iterations += 1;
                let x_hat: Vec<bool> = x_vars.iter().map(|v| model[v.index()]).collect();
                let y_hat = oracle(&x_hat);
                observations.push((x_hat, y_hat));
            }
            SatResult::Unsat => {
                conflicts += solver.num_conflicts;
                // no DIP left: extract any key satisfying all observations
                let (cnf, _, k1, _, _) = build_attack_cnf(locked, &observations)?;
                let mut solver = Solver::from_cnf(&cnf);
                return Ok(match solver.solve() {
                    SatResult::Sat(model) => Some(SatAttackResult {
                        key: k1.iter().map(|v| model[v.index()]).collect(),
                        iterations,
                        conflicts,
                    }),
                    SatResult::Unsat => None,
                });
            }
        }
        assert!(
            iterations <= 1 << 16,
            "SAT attack runaway: too many iterations"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::locking::{mux_lock, sfll_hd0, xor_lock};
    use seceda_netlist::{c17, majority};

    fn check_attack_recovers_function(locked: &LockedNetlist, original: &seceda_netlist::Netlist) {
        let oracle = |x: &[bool]| original.evaluate(x);
        let result = sat_attack(locked, oracle)
            .expect("attack runs")
            .expect("key found");
        // recovered key must be functionally correct on every input
        let n = locked.num_original_inputs;
        for pattern in 0..(1u32 << n) {
            let inputs: Vec<bool> = (0..n).map(|b| (pattern >> b) & 1 == 1).collect();
            assert_eq!(
                locked.evaluate_with_key(&inputs, &result.key),
                original.evaluate(&inputs),
                "recovered key wrong on {inputs:?}"
            );
        }
    }

    #[test]
    fn breaks_xor_locking_on_c17() {
        let nl = c17();
        let locked = xor_lock(&nl, 8, 7);
        check_attack_recovers_function(&locked, &nl);
    }

    #[test]
    fn breaks_mux_locking_on_majority() {
        let nl = majority();
        let locked = mux_lock(&nl, 4, 9);
        check_attack_recovers_function(&locked, &nl);
    }

    #[test]
    fn sfll_requires_many_more_queries() {
        // SFLL-HD0's resilience: each DIP rules out only the keys equal
        // to that DIP, so the attack needs ~2^n oracle queries, versus a
        // handful for XOR locking.
        let nl = c17();
        let xor = xor_lock(&nl, 8, 11);
        let sfll = sfll_hd0(&nl, &[true, false, true, false, true]);
        let oracle = |x: &[bool]| nl.evaluate(x);
        let xr = sat_attack(&xor, oracle).expect("runs").expect("key");
        let sr = sat_attack(&sfll, oracle).expect("runs").expect("key");
        assert!(
            sr.iterations > 4 * xr.iterations.max(1),
            "SFLL must cost far more queries: sfll {} vs xor {}",
            sr.iterations,
            xr.iterations
        );
        // and the SFLL iteration count approaches the input-space size
        assert!(
            sr.iterations >= 12,
            "SFLL-HD0 on 5 inputs needs on the order of 2^5 queries, got {}",
            sr.iterations
        );
    }

    #[test]
    fn attack_effort_grows_with_key_width() {
        let nl = c17();
        let small = xor_lock(&nl, 2, 21);
        let large = xor_lock(&nl, 16, 22);
        let oracle = |x: &[bool]| nl.evaluate(x);
        let rs = sat_attack(&small, oracle).expect("runs").expect("key");
        let rl = sat_attack(&large, oracle).expect("runs").expect("key");
        // more key gates mean at least as many (usually more) iterations
        assert!(rl.iterations >= rs.iterations);
    }
}
