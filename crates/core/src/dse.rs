//! Security-aware design-space exploration and step-function detection.
//!
//! Sec. IV: "one can expect some security metrics to act more like step
//! functions, where certain efforts must be spent to reach a security
//! level, but spending more will not provide additional benefits. This
//! is fundamentally different from classical metrics like area."
//! [`step_score`] quantifies that: the fraction of a curve's total change
//! concentrated in its single largest jump. Smooth PPA curves score low;
//! threshold-like security curves score high.

/// One sampled point of a sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DsePoint {
    /// The swept design parameter (key bits, split layer, traces, ...).
    pub parameter: f64,
    /// The measured metric at that parameter.
    pub metric: f64,
}

/// A named sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct DseSweep {
    /// What was swept and measured.
    pub name: String,
    /// The samples, in increasing parameter order.
    pub points: Vec<DsePoint>,
}

impl DseSweep {
    /// The step score of the metric curve (see [`step_score`]).
    pub fn step_score(&self) -> f64 {
        step_score(&self.points.iter().map(|p| p.metric).collect::<Vec<_>>())
    }
}

/// Fraction of the curve's total absolute change concentrated in its
/// largest single jump: 1.0 = a pure step, ~1/(n-1) = a straight line.
/// Returns 0.0 for constant or too-short curves.
pub fn step_score(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let diffs: Vec<f64> = values.windows(2).map(|w| (w[1] - w[0]).abs()).collect();
    let total: f64 = diffs.iter().sum();
    if total == 0.0 {
        return 0.0;
    }
    diffs.iter().fold(0.0f64, |a, &b| a.max(b)) / total
}

/// Runs a sweep: evaluates `measure` at each parameter value.
pub fn explore(
    name: impl Into<String>,
    parameters: &[f64],
    mut measure: impl FnMut(f64) -> f64,
) -> DseSweep {
    DseSweep {
        name: name.into(),
        points: parameters
            .iter()
            .map(|&p| DsePoint {
                parameter: p,
                metric: measure(p),
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pure_step_scores_one() {
        assert!((step_score(&[0.0, 0.0, 0.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn straight_line_scores_low() {
        let line: Vec<f64> = (0..11).map(|i| i as f64).collect();
        let s = step_score(&line);
        assert!((s - 0.1).abs() < 1e-12, "line score {s}");
    }

    #[test]
    fn degenerate_curves() {
        assert_eq!(step_score(&[]), 0.0);
        assert_eq!(step_score(&[1.0]), 0.0);
        assert_eq!(step_score(&[2.0, 2.0, 2.0]), 0.0);
    }

    #[test]
    fn explore_collects_points() {
        let sweep = explore("square", &[1.0, 2.0, 3.0], |p| p * p);
        assert_eq!(sweep.points.len(), 3);
        assert_eq!(sweep.points[2].metric, 9.0);
    }

    #[test]
    fn security_step_beats_area_curve() {
        // a mock "security level vs effort" step and an "area vs effort"
        // smooth curve — the security one must score much higher
        let security = [0.0, 0.0, 0.0, 0.95, 0.97, 0.98];
        let area: Vec<f64> = (0..6).map(|i| 100.0 + 12.0 * i as f64).collect();
        assert!(step_score(&security) > 3.0 * step_score(&area));
    }
}
