//! The secure-composition engine (the paper's Sec. IV, executable).
//!
//! The engine owns a design under test, applies countermeasures, and —
//! after every single application — re-runs the evaluations for *all*
//! threat vectors, comparing against the previous report. A metric that
//! flips from pass to fail is a *negative cross-effect*: the freshly
//! inserted countermeasure silently compromised an earlier one.
//!
//! The canonical run (see the tests and the `composition_crosseffect`
//! bench) reproduces \[61\]: Boolean masking passes the side-channel
//! evaluation; adding parity-based fault detection restores fault
//! coverage but *fails* the re-run side-channel check, because the
//! parity predictor recombines the shares. Duplication-with-compare,
//! which compares share-wise, composes cleanly.

use crate::cache::{CacheKey, EvalCache};
use crate::metrics::{MetricProvenance, MetricSource, MetricValue, SecurityMetric, SecurityReport};
use crate::threat::ThreatVector;
use seceda_fia::{
    analyze_faults, duplicate_with_compare, parity_protect, FaultCampaign, InjectionModel,
    ProtectedNetlist,
};
use seceda_lock::xor_lock;
use seceda_netlist::{DigestBuilder, Netlist, NetlistError, StructuralHash};
use seceda_sca::{first_order_leaks, mask_netlist, ProbingModel};
use seceda_sim::signal_probabilities;
use seceda_testkit::chaos;
use seceda_testkit::par::par_map_catch;
use seceda_trojan::insert_rare_event_monitor;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A design plus the interface semantics the evaluations need.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignUnderTest {
    /// The current netlist.
    pub netlist: Netlist,
    /// Masked-interface description, if the design is masked (set by the
    /// masking countermeasure).
    pub probing_model: Option<ProbingModel>,
    /// Index of an alarm output, if a detection scheme is present.
    pub alarm_index: Option<usize>,
    /// Number of locking key bits present.
    pub key_bits: usize,
    /// Whether runtime Trojan monitors are present.
    pub monitored: bool,
}

impl DesignUnderTest {
    /// Wraps a plain netlist with no countermeasures applied.
    pub fn new(netlist: Netlist) -> Self {
        DesignUnderTest {
            netlist,
            probing_model: None,
            alarm_index: None,
            key_bits: 0,
            monitored: false,
        }
    }
}

/// The countermeasures the engine can apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Countermeasure {
    /// 3-share ISW Boolean masking (`seceda-sca`).
    Masking,
    /// Parity-code fault detection (`seceda-fia`) — cheap, but does not
    /// compose with masking.
    ParityCheck,
    /// Duplication with comparison (`seceda-fia`) — share-wise, composes
    /// with masking.
    DuplicationCompare,
    /// EPIC-style XOR locking with the given key width (`seceda-lock`).
    XorLock(usize),
    /// Rare-event Trojan monitors (`seceda-trojan`).
    TrojanMonitor,
}

/// Thresholds and effort knobs of the evaluation suite.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SecurityEvaluation {
    /// Max tolerated first-order probing leaks (0 = provably none).
    pub max_probing_leaks: usize,
    /// Min fault-detection coverage.
    pub min_fault_coverage: f64,
    /// Fault campaign shots.
    pub fia_shots: usize,
    /// Min locking key bits for piracy protection.
    pub min_key_bits: usize,
    /// Max unmonitored rare nets (Trojan insertion surface).
    pub max_unmonitored_rare_nets: usize,
    /// Rarity threshold for the Trojan surface metric.
    pub rare_threshold: f64,
    /// Seed for the stochastic evaluations.
    pub seed: u64,
    /// Per-threat wall-clock budget slice. A threat evaluator that
    /// overruns its slice degrades to [`crate::Verdict::Unavailable`]
    /// instead of stalling the whole re-evaluation; `None` (the default)
    /// leaves evaluations unbounded.
    pub threat_budget: Option<Duration>,
}

impl Default for SecurityEvaluation {
    fn default() -> Self {
        SecurityEvaluation {
            max_probing_leaks: 0,
            min_fault_coverage: 0.99,
            fia_shots: 100,
            min_key_bits: 8,
            max_unmonitored_rare_nets: 0,
            rare_threshold: 0.05,
            seed: 0xC0DE,
            threat_budget: None,
        }
    }
}

/// What one engine step produced.
#[derive(Debug, Clone, PartialEq)]
pub struct EvaluationOutcome {
    /// The full multi-threat report after the step.
    pub report: SecurityReport,
    /// Names of metrics that regressed pass → fail in this step — the
    /// cross-effects the paper warns about.
    pub regressions: Vec<String>,
    /// Gates whose structural fingerprint changed in this step — the
    /// dirty cone that forced re-evaluation. `None` when the engine runs
    /// without a cache (no hash is maintained then).
    pub dirty_gates: Option<usize>,
}

/// The composition engine.
#[derive(Debug, Clone)]
pub struct CompositionEngine {
    dut: DesignUnderTest,
    eval: SecurityEvaluation,
    history: Vec<SecurityReport>,
    applied: Vec<Countermeasure>,
    cache: Option<Arc<EvalCache>>,
    hash: Option<StructuralHash>,
}

impl CompositionEngine {
    /// Creates an engine over a design.
    pub fn new(dut: DesignUnderTest, eval: SecurityEvaluation) -> Self {
        CompositionEngine {
            dut,
            eval,
            history: Vec::new(),
            applied: Vec::new(),
            cache: None,
            hash: None,
        }
    }

    /// Creates an engine whose threat evaluations are served through a
    /// shared [`EvalCache`].
    ///
    /// Every cache key binds a structural digest of *exactly* what the
    /// corresponding evaluator reads (design fingerprint, interface
    /// state, thresholds, seeds), so a cache hit is bit-identical to a
    /// recompute — the differential suite in
    /// `tests/incremental_compose.rs` holds the engine to that contract.
    pub fn with_cache(
        dut: DesignUnderTest,
        eval: SecurityEvaluation,
        cache: Arc<EvalCache>,
    ) -> Self {
        CompositionEngine {
            dut,
            eval,
            history: Vec::new(),
            applied: Vec::new(),
            cache: Some(cache),
            hash: None,
        }
    }

    /// The shared evaluation cache, if caching is enabled.
    pub fn cache(&self) -> Option<&Arc<EvalCache>> {
        self.cache.as_ref()
    }

    /// The current design state.
    pub fn design(&self) -> &DesignUnderTest {
        &self.dut
    }

    /// Countermeasures applied so far, in order.
    pub fn applied(&self) -> &[Countermeasure] {
        &self.applied
    }

    /// All reports, in chronological order.
    pub fn history(&self) -> &[SecurityReport] {
        &self.history
    }

    /// Evaluates every threat vector on the current design and appends
    /// the report to the history.
    ///
    /// The four threat evaluators run isolated from each other: each is
    /// caught on panic and bounded by its own
    /// [`SecurityEvaluation::threat_budget`] wall-clock slice, so one
    /// crashing or overrunning evaluator degrades *its* metric to
    /// [`crate::Verdict::Unavailable`] while the rest of the
    /// re-evaluation completes normally. Degradations are counted on the
    /// `compose.threats_degraded` trace counter.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors.
    pub fn evaluate(&mut self, label: &str) -> Result<&SecurityReport, NetlistError> {
        let _reeval_t = seceda_trace::hist_timer("compose.reeval_ns");
        let mut eval_span = seceda_trace::span("compose.evaluate")
            .with("label", label)
            .with("gates", self.dut.netlist.num_gates());
        if self.cache.is_some() && self.hash.is_none() {
            self.hash = Some(StructuralHash::of(&self.dut.netlist)?);
        }
        let threats: [(&str, ThreatVector, &str); 4] = [
            (
                "side-channel",
                ThreatVector::SideChannel,
                "first-order probing leaks",
            ),
            (
                "fault-injection",
                ThreatVector::FaultInjection,
                "fault-detection coverage",
            ),
            ("piracy", ThreatVector::Piracy, "locking key bits"),
            ("trojan", ThreatVector::Trojan, "unmonitored rare nets"),
        ];
        // every threat gets its own slice of equal length, started
        // together (the evaluators run concurrently)
        let slice_deadline = self.eval.threat_budget.map(|d| Instant::now() + d);
        let dut = &self.dut;
        let eval = &self.eval;
        let cache = self.cache.as_deref();
        let hash = self.hash.as_ref();
        let results = par_map_catch(&threats, |i, &(tag, threat, name)| {
            let _threat_t = seceda_trace::hist_timer("compose.threat_ns");
            let _sp = seceda_trace::span("compose.threat").with("threat", tag);
            // chaos and slice checks run *before* the cache lookup so a
            // cached closure degrades on exactly the same steps as a
            // full recompute — and degraded metrics are never cached
            if chaos::active() {
                chaos::maybe_panic("compose.threat.panic", i as u64);
                if chaos::maybe_exhaust("compose.threat.exhaust", i as u64) {
                    seceda_trace::counter("chaos.injections", 1);
                    return Ok((
                        SecurityMetric::unavailable(
                            name,
                            threat,
                            "chaos-injected budget exhaustion",
                        ),
                        false,
                    ));
                }
            }
            if let Some(at) = slice_deadline {
                if Instant::now() >= at {
                    return Ok((
                        SecurityMetric::unavailable(
                            name,
                            threat,
                            "threat budget slice exhausted before evaluation started",
                        ),
                        false,
                    ));
                }
            }
            let compute = || -> Result<SecurityMetric, NetlistError> {
                Ok(match i {
                    0 => eval_side_channel(dut, eval),
                    1 => eval_fault_injection(dut, eval)?,
                    2 => eval_piracy(dut, eval),
                    3 => eval_trojan(dut, eval)?,
                    _ => unreachable!("four threat vectors"),
                })
            };
            let (metric, hit) = match (cache, hash) {
                (Some(c), Some(h)) => {
                    c.get_or_compute(threat_cache_key(threat, dut, eval, h), compute)?
                }
                _ => (compute()?, false),
            };
            if let Some(at) = slice_deadline {
                if Instant::now() >= at {
                    return Ok((
                        SecurityMetric::unavailable(name, threat, "threat budget slice exhausted"),
                        false,
                    ));
                }
            }
            Ok((metric, hit))
        });
        let caching = self.cache.is_some();
        let mut report = SecurityReport::new(label);
        let mut degraded = 0u64;
        let mut hits = 0u64;
        let mut misses = 0u64;
        for (res, &(_, threat, name)) in results.into_iter().zip(&threats) {
            match res {
                Ok(Ok((metric, hit))) => {
                    if !metric.value.is_available() {
                        degraded += 1;
                    }
                    if caching {
                        if hit {
                            hits += 1;
                        } else {
                            misses += 1;
                        }
                        report.provenance.push(MetricProvenance {
                            name: metric.name.clone(),
                            source: if hit {
                                MetricSource::Cached
                            } else {
                                MetricSource::Computed
                            },
                        });
                    }
                    report.metrics.push(metric);
                }
                // simulator errors are real errors, not degradations
                Ok(Err(e)) => return Err(e),
                Err(p) => {
                    if p.message.starts_with("chaos:") {
                        seceda_trace::counter("chaos.injections", 1);
                    }
                    degraded += 1;
                    if caching {
                        misses += 1;
                        report.provenance.push(MetricProvenance {
                            name: name.to_string(),
                            source: MetricSource::Computed,
                        });
                    }
                    report.metrics.push(SecurityMetric::unavailable(
                        name,
                        threat,
                        format!("threat evaluator panicked: {}", p.message),
                    ));
                }
            }
        }
        if degraded > 0 {
            seceda_trace::counter("compose.threats_degraded", degraded);
        }
        if caching {
            if hits > 0 {
                seceda_trace::counter("compose.cache_hits", hits);
            }
            if misses > 0 {
                seceda_trace::counter("compose.cache_misses", misses);
            }
            eval_span.attr("cache_hits", hits);
        }
        eval_span.attr("degraded", degraded);

        let failing = report
            .metrics
            .iter()
            .filter(|m| m.verdict == crate::metrics::Verdict::Fail)
            .count();
        eval_span.attr("metrics", report.metrics.len());
        eval_span.attr("failing", failing);
        self.history.push(report);
        Ok(self.history.last().expect("just pushed"))
    }

    /// Applies a countermeasure, then re-evaluates **all** threats and
    /// reports any regression — the paper's secure-composition loop.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors.
    ///
    /// # Panics
    ///
    /// Panics if the countermeasure cannot apply to the current design
    /// (e.g. masking a sequential netlist).
    pub fn apply(&mut self, cm: Countermeasure) -> Result<EvaluationOutcome, NetlistError> {
        let mut apply_span = seceda_trace::span("compose.apply");
        if seceda_trace::enabled() {
            // Debug-formatting the countermeasure allocates on every
            // apply; this is the closure hot path, so only pay for the
            // attribute when a recorder is actually listening.
            apply_span.attr("countermeasure", format!("{cm:?}"));
        }
        let had_baseline = !self.history.is_empty();
        let prev_hash = self.hash.take();
        match cm {
            Countermeasure::Masking => {
                let masked = mask_netlist(&self.dut.netlist);
                self.dut.probing_model = Some(ProbingModel::of(&masked));
                self.dut.netlist = masked.netlist;
                self.dut.alarm_index = None; // masking replaced the design
            }
            Countermeasure::ParityCheck => {
                let p = parity_protect(&self.dut.netlist);
                self.dut.netlist = p.netlist;
                self.dut.alarm_index = p.alarm_index;
            }
            Countermeasure::DuplicationCompare => {
                let p = duplicate_with_compare(&self.dut.netlist);
                self.dut.netlist = p.netlist;
                self.dut.alarm_index = p.alarm_index;
            }
            Countermeasure::XorLock(bits) => {
                let locked = xor_lock(&self.dut.netlist, bits, self.eval.seed ^ 3);
                self.dut.netlist = locked.netlist;
                self.dut.key_bits += bits;
                // key inputs change the interface; exact probing no
                // longer applies as-is
                self.dut.probing_model = None;
            }
            Countermeasure::TrojanMonitor => {
                let monitored = insert_rare_event_monitor(
                    &self.dut.netlist,
                    1,
                    usize::MAX,
                    self.eval.rare_threshold,
                    self.eval.seed ^ 4,
                )?;
                self.dut.netlist = monitored.netlist;
                self.dut.monitored = true;
            }
        }
        self.applied.push(cm);
        // keep the structural hash alive across the edit and measure the
        // dirty cone; without a cache no hash is maintained at all
        let dirty_gates = match prev_hash {
            Some(prev) => {
                let new_hash = match cm {
                    // XorLock and TrojanMonitor splice into a clone of
                    // the design — surviving nets keep their structure —
                    // so the incremental update re-fingerprints only the
                    // edited cone
                    Countermeasure::XorLock(_) | Countermeasure::TrojanMonitor => {
                        let mut h = prev.clone();
                        h.update_after_edit(&self.dut.netlist, &[])?;
                        debug_assert_eq!(
                            h,
                            StructuralHash::of(&self.dut.netlist).expect("full rehash"),
                            "incremental hash diverged after {cm:?}"
                        );
                        h
                    }
                    // masking / parity / duplication rebuild the netlist
                    // wholesale; a full re-hash is the honest cost
                    _ => StructuralHash::of(&self.dut.netlist)?,
                };
                let dirty = new_hash.dirty_gates(&self.dut.netlist, &prev).len();
                seceda_trace::counter("compose.dirty_gates", dirty as u64);
                apply_span.attr("dirty_gates", dirty);
                self.hash = Some(new_hash);
                Some(dirty)
            }
            // cache off, or nothing evaluated yet: stay lazy
            None => None,
        };
        let label = format!("after {cm:?}");
        self.evaluate(&label)?;
        // the baseline is borrowed from history rather than cloned —
        // reports on big closures carry four metrics plus provenance and
        // cloning one per step was pure overhead
        let last = self.history.len() - 1;
        let regressions: Vec<String> = if had_baseline {
            self.history[last]
                .regressions_from(&self.history[last - 1])
                .into_iter()
                .map(|m| m.name.clone())
                .collect()
        } else {
            Vec::new()
        };
        apply_span.attr("regressions", regressions.len());
        seceda_trace::counter("compose.reevaluations", 1);
        Ok(EvaluationOutcome {
            report: self.history[last].clone(),
            regressions,
            dirty_gates,
        })
    }

    /// Restores the design to `snapshot` (taken with
    /// [`design`](Self::design)`.clone()` before the most recent
    /// [`apply`](Self::apply)) and pops the countermeasure log.
    ///
    /// The report history stays append-only — the closure driver
    /// re-evaluates the restored state, and with a shared cache that
    /// re-evaluation hits the pre-apply keys instead of recomputing.
    /// Returns the countermeasure that was rolled back.
    pub fn revert_last(&mut self, snapshot: DesignUnderTest) -> Option<Countermeasure> {
        self.dut = snapshot;
        self.hash = None; // lazily re-hashed on the next evaluation
        self.applied.pop()
    }
}

/// Derives the cache key for one threat evaluator on the current design:
/// a digest over *exactly* the state that evaluator reads, so equal keys
/// imply bit-identical results.
///
/// Per-threat dependency sets (each must mirror its `eval_*` function —
/// the differential suite enforces this):
///
/// * side-channel, masked: design digest + probing-model shape;
///   unmasked: primary-input count only;
/// * fault-injection: design digest, alarm index, shots, seed;
/// * piracy: key bits only — no structural dependency at all;
/// * trojan, monitored: constant; unmonitored: design digest, rarity
///   threshold, seed.
///
/// Thresholds land in the produced [`SecurityMetric`], so each branch
/// also absorbs the thresholds it reports against.
fn threat_cache_key(
    threat: ThreatVector,
    dut: &DesignUnderTest,
    eval: &SecurityEvaluation,
    hash: &StructuralHash,
) -> CacheKey {
    let mut b = DigestBuilder::new();
    match threat {
        ThreatVector::SideChannel => {
            b.absorb(eval.max_probing_leaks as u64);
            match &dut.probing_model {
                // the masked-interface condition mirrors eval_side_channel
                Some(model)
                    if dut.netlist.inputs().len()
                        == model.num_secrets * seceda_sca::NUM_SHARES + model.num_randoms =>
                {
                    b.absorb(1);
                    b.absorb_digest(hash.digest());
                    b.absorb(model.num_secrets as u64);
                    b.absorb(model.num_randoms as u64);
                }
                _ => {
                    b.absorb(0);
                    b.absorb(dut.netlist.inputs().len() as u64);
                }
            }
        }
        ThreatVector::FaultInjection => {
            b.absorb_digest(hash.digest());
            b.absorb(match dut.alarm_index {
                Some(i) => i as u64 + 1,
                None => 0,
            });
            b.absorb(eval.fia_shots as u64);
            b.absorb(eval.seed);
            b.absorb(eval.min_fault_coverage.to_bits());
        }
        ThreatVector::Piracy => {
            b.absorb(dut.key_bits as u64);
            b.absorb(eval.min_key_bits as u64);
        }
        ThreatVector::Trojan => {
            b.absorb(eval.max_unmonitored_rare_nets as u64);
            if dut.monitored {
                b.absorb(1); // monitored designs report zero surface
            } else {
                b.absorb(0);
                b.absorb_digest(hash.digest());
                b.absorb(eval.rare_threshold.to_bits());
                b.absorb(eval.seed);
            }
        }
    }
    CacheKey {
        threat,
        dep: b.finish().0,
    }
}

/// Side channels: exact first-order probing when masked; every secret
/// wire counts as a leak otherwise.
fn eval_side_channel(dut: &DesignUnderTest, eval: &SecurityEvaluation) -> SecurityMetric {
    let leaks = match &dut.probing_model {
        Some(model)
            if dut.netlist.inputs().len()
                == model.num_secrets * seceda_sca::NUM_SHARES + model.num_randoms =>
        {
            first_order_leaks(&dut.netlist, model).len()
        }
        // unmasked: every secret wire is a first-order leak
        _ => dut.netlist.inputs().len().max(1),
    };
    SecurityMetric::new(
        "first-order probing leaks",
        ThreatVector::SideChannel,
        MetricValue::LowerBetter {
            value: leaks as f64,
            threshold: eval.max_probing_leaks as f64,
        },
    )
}

/// Fault injection: detection coverage on single gate faults.
fn eval_fault_injection(
    dut: &DesignUnderTest,
    eval: &SecurityEvaluation,
) -> Result<SecurityMetric, NetlistError> {
    let protected = ProtectedNetlist {
        netlist: dut.netlist.clone(),
        alarm_index: dut.alarm_index,
    };
    let campaign = FaultCampaign {
        model: InjectionModel::RandomGate,
        shots: eval.fia_shots,
        seed: eval.seed,
    };
    let analysis = analyze_faults(&protected, &campaign, 4, eval.seed ^ 1)?;
    let coverage = if analysis.detected + analysis.silent == 0 {
        // nothing corrupted anything — treat as covered only when an
        // alarm exists; an unprotected design earns no credit
        if dut.alarm_index.is_some() {
            1.0
        } else {
            0.0
        }
    } else {
        analysis.detection_coverage
    };
    Ok(SecurityMetric::new(
        "fault-detection coverage",
        ThreatVector::FaultInjection,
        MetricValue::HigherBetter {
            value: coverage,
            threshold: eval.min_fault_coverage,
        },
    ))
}

/// Piracy: locking key material present.
fn eval_piracy(dut: &DesignUnderTest, eval: &SecurityEvaluation) -> SecurityMetric {
    SecurityMetric::new(
        "locking key bits",
        ThreatVector::Piracy,
        MetricValue::HigherBetter {
            value: dut.key_bits as f64,
            threshold: eval.min_key_bits as f64,
        },
    )
}

/// Trojans: unmonitored rare-net surface.
fn eval_trojan(
    dut: &DesignUnderTest,
    eval: &SecurityEvaluation,
) -> Result<SecurityMetric, NetlistError> {
    let probs = signal_probabilities(&dut.netlist, 32, eval.seed ^ 2)?;
    // nets that never toggle (empirical rarity 0) cannot fire a
    // functional trigger and are excluded, matching the insertion
    // model in `seceda-trojan`
    let rare = dut
        .netlist
        .gates()
        .iter()
        .map(|g| probs[g.output.index()])
        .map(|p| p.min(1.0 - p))
        .filter(|&r| r > 0.0 && r <= eval.rare_threshold)
        .count();
    let unmonitored = if dut.monitored { 0 } else { rare };
    Ok(SecurityMetric::new(
        "unmonitored rare nets",
        ThreatVector::Trojan,
        MetricValue::LowerBetter {
            value: unmonitored as f64,
            threshold: eval.max_unmonitored_rare_nets as f64,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Verdict as V;
    use seceda_netlist::CellKind;

    fn and_gadget() -> DesignUnderTest {
        let mut nl = Netlist::new("and");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let y = nl.add_gate(CellKind::And, &[a, b]);
        nl.mark_output(y, "y");
        DesignUnderTest::new(nl)
    }

    fn sca_verdict(report: &SecurityReport) -> V {
        report
            .metrics
            .iter()
            .find(|m| m.name == "first-order probing leaks")
            .expect("metric present")
            .verdict
    }

    #[test]
    fn masking_fixes_sca_and_leaves_fia_open() {
        let mut engine = CompositionEngine::new(and_gadget(), SecurityEvaluation::default());
        engine.evaluate("baseline").expect("eval");
        assert_eq!(sca_verdict(&engine.history()[0]), V::Fail);
        let outcome = engine.apply(Countermeasure::Masking).expect("apply");
        assert_eq!(sca_verdict(&outcome.report), V::Pass);
        let fia = outcome
            .report
            .metrics
            .iter()
            .find(|m| m.name == "fault-detection coverage")
            .expect("metric");
        assert_eq!(fia.verdict, V::Fail, "masking alone detects no faults");
        assert!(outcome.regressions.is_empty());
    }

    #[test]
    fn parity_check_on_masked_design_regresses_sca() {
        // The paper's Sec. IV / [61] cross-effect, caught automatically.
        let mut engine = CompositionEngine::new(and_gadget(), SecurityEvaluation::default());
        engine.evaluate("baseline").expect("eval");
        engine.apply(Countermeasure::Masking).expect("mask");
        let outcome = engine.apply(Countermeasure::ParityCheck).expect("parity");
        assert!(
            outcome
                .regressions
                .contains(&"first-order probing leaks".to_string()),
            "the engine must flag the masking/parity conflict: {:?}",
            outcome.regressions
        );
        assert_eq!(sca_verdict(&outcome.report), V::Fail);
        // and the fault metric did improve — that's why naive flows
        // accept this countermeasure
        let fia = outcome
            .report
            .metrics
            .iter()
            .find(|m| m.name == "fault-detection coverage")
            .expect("metric");
        assert_eq!(fia.verdict, V::Pass);
    }

    #[test]
    fn duplication_composes_cleanly_with_masking() {
        let mut engine = CompositionEngine::new(and_gadget(), SecurityEvaluation::default());
        engine.evaluate("baseline").expect("eval");
        engine.apply(Countermeasure::Masking).expect("mask");
        let outcome = engine
            .apply(Countermeasure::DuplicationCompare)
            .expect("dwc");
        assert!(
            outcome.regressions.is_empty(),
            "share-wise duplication must not break masking: {:?}",
            outcome.regressions
        );
        assert_eq!(sca_verdict(&outcome.report), V::Pass);
        let fia = outcome
            .report
            .metrics
            .iter()
            .find(|m| m.name == "fault-detection coverage")
            .expect("metric");
        assert_eq!(fia.verdict, V::Pass);
    }

    #[test]
    fn locking_and_monitoring_move_their_metrics() {
        let mut engine = CompositionEngine::new(and_gadget(), SecurityEvaluation::default());
        engine.evaluate("baseline").expect("eval");
        let locked = engine.apply(Countermeasure::XorLock(8)).expect("lock");
        let piracy = locked
            .report
            .metrics
            .iter()
            .find(|m| m.name == "locking key bits")
            .expect("metric");
        assert_eq!(piracy.verdict, V::Pass);
        let monitored = engine
            .apply(Countermeasure::TrojanMonitor)
            .expect("monitor");
        let trojan = monitored
            .report
            .metrics
            .iter()
            .find(|m| m.name == "unmonitored rare nets")
            .expect("metric");
        assert_eq!(trojan.verdict, V::Pass);
    }

    #[test]
    fn chaos_panic_in_one_threat_degrades_only_that_metric() {
        chaos::with_forced("compose.threat.panic", Some(1), || {
            let mut engine = CompositionEngine::new(and_gadget(), SecurityEvaluation::default());
            let report = engine.evaluate("chaotic").expect("eval completes").clone();
            assert_eq!(report.metrics.len(), 4, "every threat stays in the report");
            let degraded = report.degraded();
            assert_eq!(degraded.len(), 1, "exactly the injected threat degrades");
            assert_eq!(degraded[0].name, "fault-detection coverage");
            assert_eq!(degraded[0].verdict, V::Unavailable);
            assert!(matches!(
                &degraded[0].value,
                MetricValue::Unavailable { reason } if reason.contains("chaos")
            ));
            // the other three evaluated normally
            for name in [
                "first-order probing leaks",
                "locking key bits",
                "unmonitored rare nets",
            ] {
                let m = report
                    .metrics
                    .iter()
                    .find(|m| m.name == name)
                    .expect("metric present");
                assert_ne!(m.verdict, V::Unavailable, "{name} must not degrade");
            }
        });
    }

    #[test]
    fn zero_threat_budget_degrades_every_metric_but_completes() {
        let eval = SecurityEvaluation {
            threat_budget: Some(Duration::ZERO),
            ..SecurityEvaluation::default()
        };
        let mut engine = CompositionEngine::new(and_gadget(), eval);
        let report = engine.evaluate("starved").expect("eval completes").clone();
        assert_eq!(report.metrics.len(), 4);
        assert_eq!(report.degraded().len(), 4, "no slice, no value");
        assert!(
            report.all_pass(),
            "degraded metrics must not fail the report"
        );
        // and a fresh un-starved evaluation recovers
        engine.eval.threat_budget = None;
        let healthy = engine.evaluate("recovered").expect("eval").clone();
        assert!(healthy.degraded().is_empty());
    }

    #[test]
    fn history_accumulates() {
        let mut engine = CompositionEngine::new(and_gadget(), SecurityEvaluation::default());
        engine.evaluate("baseline").expect("eval");
        engine.apply(Countermeasure::Masking).expect("mask");
        engine
            .apply(Countermeasure::DuplicationCompare)
            .expect("dwc");
        assert_eq!(engine.history().len(), 3);
        assert_eq!(
            engine.applied(),
            &[Countermeasure::Masking, Countermeasure::DuplicationCompare]
        );
    }
}
