//! The security-metric framework.
//!
//! Sec. IV of the paper: EDA is metrics-driven, but security metrics
//! differ fundamentally from PPA — an intelligent attacker targets the
//! worst case, not the average, so "unlikely but possible" events count,
//! and many metrics behave like *step functions* of design effort.

use crate::threat::ThreatVector;
use seceda_testkit::json::{Json, ToJson};
use std::fmt;

/// A measured metric value with its pass direction.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Higher is better (e.g. fault-detection coverage).
    HigherBetter {
        /// Measured value.
        value: f64,
        /// Minimum acceptable value.
        threshold: f64,
    },
    /// Lower is better (e.g. TVLA |t|, leaking-wire count).
    LowerBetter {
        /// Measured value.
        value: f64,
        /// Maximum acceptable value.
        threshold: f64,
    },
    /// Reported for awareness but never pass/fail-gated — e.g. the
    /// rare-net Trojan surface of an unmonitored design, where no
    /// universal threshold exists. Always yields
    /// [`Verdict::NotApplicable`].
    Informational {
        /// Measured value.
        value: f64,
    },
    /// The evaluation could not produce a value — it panicked, exceeded
    /// its budget slice, or was chaos-injected. Graceful degradation:
    /// the metric stays in the report (so the rest of the evaluation is
    /// not lost) with the reason, and yields [`Verdict::Unavailable`]
    /// rather than silently passing or failing.
    Unavailable {
        /// Why the evaluation produced no value.
        reason: String,
    },
}

impl MetricValue {
    /// Whether the metric meets its threshold. Informational metrics
    /// have no threshold and never fail; unavailable metrics carry no
    /// value and never "pass" (they are gated by
    /// [`Verdict::Unavailable`], not by this predicate).
    pub fn passes(&self) -> bool {
        match self {
            MetricValue::HigherBetter { value, threshold } => value >= threshold,
            MetricValue::LowerBetter { value, threshold } => value <= threshold,
            MetricValue::Informational { .. } => true,
            MetricValue::Unavailable { .. } => false,
        }
    }

    /// The raw measured value (`NaN` for unavailable metrics).
    pub fn value(&self) -> f64 {
        match self {
            MetricValue::HigherBetter { value, .. }
            | MetricValue::LowerBetter { value, .. }
            | MetricValue::Informational { value } => *value,
            MetricValue::Unavailable { .. } => f64::NAN,
        }
    }

    /// `false` when the evaluation produced no value.
    pub fn is_available(&self) -> bool {
        !matches!(self, MetricValue::Unavailable { .. })
    }
}

/// Pass/fail with an explanation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The metric meets its threshold.
    Pass,
    /// The metric violates its threshold.
    Fail,
    /// The metric could not be evaluated for this design.
    NotApplicable,
    /// The evaluation was degraded (panic, budget exhaustion, chaos
    /// injection) and produced no value this run; earlier or later runs
    /// may still produce one.
    Unavailable,
}

/// One evaluated security metric.
#[derive(Debug, Clone, PartialEq)]
pub struct SecurityMetric {
    /// Short metric name (e.g. "first-order probing leaks").
    pub name: String,
    /// The threat vector it speaks to.
    pub threat: ThreatVector,
    /// The measurement.
    pub value: MetricValue,
    /// The verdict.
    pub verdict: Verdict,
}

impl SecurityMetric {
    /// Builds a metric, deriving the verdict from the value.
    /// Informational values are never gated and report
    /// [`Verdict::NotApplicable`].
    pub fn new(name: impl Into<String>, threat: ThreatVector, value: MetricValue) -> Self {
        SecurityMetric {
            name: name.into(),
            threat,
            verdict: match &value {
                MetricValue::Informational { .. } => Verdict::NotApplicable,
                MetricValue::Unavailable { .. } => Verdict::Unavailable,
                _ if value.passes() => Verdict::Pass,
                _ => Verdict::Fail,
            },
            value,
        }
    }

    /// Builds a degraded metric: the named evaluation could not run (or
    /// finish) for `reason`; the verdict is [`Verdict::Unavailable`].
    pub fn unavailable(
        name: impl Into<String>,
        threat: ThreatVector,
        reason: impl Into<String>,
    ) -> Self {
        SecurityMetric::new(
            name,
            threat,
            MetricValue::Unavailable {
                reason: reason.into(),
            },
        )
    }
}

impl fmt::Display for SecurityMetric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {} = {:.4} ({:?})",
            self.threat,
            self.name,
            self.value.value(),
            self.verdict
        )
    }
}

/// How a metric in a report was obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricSource {
    /// Evaluated from scratch this run.
    Computed,
    /// Served from the shared evaluation cache: the threat's dependency
    /// cone was untouched by the edits since the metric was computed.
    Cached,
}

/// Provenance of one metric in a report (recorded by the incremental
/// composition engine when it runs with an evaluation cache).
#[derive(Debug, Clone, PartialEq)]
pub struct MetricProvenance {
    /// The metric name this entry describes.
    pub name: String,
    /// Where the value came from.
    pub source: MetricSource,
}

/// A full multi-threat evaluation of one design state.
#[derive(Debug, Clone, Default)]
pub struct SecurityReport {
    /// Label of the design state (e.g. "after masking").
    pub label: String,
    /// All evaluated metrics.
    pub metrics: Vec<SecurityMetric>,
    /// Per-metric provenance, parallel to `metrics`, when the engine
    /// ran with an evaluation cache; empty otherwise.
    pub provenance: Vec<MetricProvenance>,
}

/// Equality compares the label and the metrics only. Provenance is
/// execution metadata — whether a value was computed or served from
/// cache — and a cached report must compare equal to its full-recompute
/// twin; this is the bit-identity contract the differential suite
/// pins. (Same discipline as `Netlist`'s equality, which ignores
/// internal net names as debugging metadata.)
impl PartialEq for SecurityReport {
    fn eq(&self, other: &Self) -> bool {
        self.label == other.label && self.metrics == other.metrics
    }
}

impl SecurityReport {
    /// Creates an empty report.
    pub fn new(label: impl Into<String>) -> Self {
        SecurityReport {
            label: label.into(),
            metrics: Vec::new(),
            provenance: Vec::new(),
        }
    }

    /// Number of metrics served from the evaluation cache this run.
    pub fn cached_count(&self) -> usize {
        self.provenance
            .iter()
            .filter(|p| p.source == MetricSource::Cached)
            .count()
    }

    /// Metrics for a specific threat.
    pub fn for_threat(&self, threat: ThreatVector) -> Vec<&SecurityMetric> {
        self.metrics.iter().filter(|m| m.threat == threat).collect()
    }

    /// `true` if every metric passes. Degraded ([`Verdict::Unavailable`])
    /// metrics do not fail the report — they are surfaced separately by
    /// [`SecurityReport::degraded`] so a partial evaluation still yields
    /// a usable (if weaker) verdict.
    pub fn all_pass(&self) -> bool {
        self.metrics.iter().all(|m| m.verdict != Verdict::Fail)
    }

    /// Metrics whose evaluation degraded to
    /// [`Verdict::Unavailable`] this run.
    pub fn degraded(&self) -> Vec<&SecurityMetric> {
        self.metrics
            .iter()
            .filter(|m| m.verdict == Verdict::Unavailable)
            .collect()
    }

    /// Metrics that regressed (pass → fail) relative to `baseline` —
    /// the *negative cross-effect* detector of the composition engine.
    pub fn regressions_from<'a>(&'a self, baseline: &SecurityReport) -> Vec<&'a SecurityMetric> {
        self.metrics
            .iter()
            .filter(|m| {
                m.verdict == Verdict::Fail
                    && baseline
                        .metrics
                        .iter()
                        .any(|b| b.name == m.name && b.verdict == Verdict::Pass)
            })
            .collect()
    }
}

impl ToJson for MetricValue {
    fn to_json(&self) -> Json {
        if let MetricValue::Unavailable { reason } = self {
            return Json::obj()
                .field("direction", "unavailable")
                .field("value", Json::Null)
                .field("threshold", Json::Null)
                .field("reason", reason.as_str())
                .build();
        }
        let (direction, value, threshold) = match self {
            MetricValue::HigherBetter { value, threshold } => {
                ("higher-better", *value, Json::Num(*threshold))
            }
            MetricValue::LowerBetter { value, threshold } => {
                ("lower-better", *value, Json::Num(*threshold))
            }
            MetricValue::Informational { value } => ("informational", *value, Json::Null),
            MetricValue::Unavailable { .. } => unreachable!("handled above"),
        };
        Json::obj()
            .field("direction", direction)
            .field("value", value)
            .field("threshold", threshold)
            .build()
    }
}

impl ToJson for Verdict {
    fn to_json(&self) -> Json {
        Json::Str(
            match self {
                Verdict::Pass => "pass",
                Verdict::Fail => "fail",
                Verdict::NotApplicable => "n/a",
                Verdict::Unavailable => "unavailable",
            }
            .to_string(),
        )
    }
}

impl ToJson for SecurityMetric {
    fn to_json(&self) -> Json {
        Json::obj()
            .field("name", self.name.as_str())
            .with("threat", &self.threat)
            .with("value", &self.value)
            .with("verdict", &self.verdict)
            .build()
    }
}

impl ToJson for SecurityReport {
    fn to_json(&self) -> Json {
        let mut obj = Json::obj()
            .field("label", self.label.as_str())
            .field("all_pass", self.all_pass())
            .field("metrics", Json::arr(&self.metrics));
        if !self.provenance.is_empty() {
            obj = obj.field("cached", self.cached_count() as i64);
        }
        obj.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thresholds_respect_direction() {
        let cov = MetricValue::HigherBetter {
            value: 0.99,
            threshold: 0.95,
        };
        assert!(cov.passes());
        let t = MetricValue::LowerBetter {
            value: 7.2,
            threshold: 4.5,
        };
        assert!(!t.passes());
    }

    #[test]
    fn informational_metrics_never_gate() {
        let m = SecurityMetric::new(
            "rare-net Trojan surface",
            ThreatVector::Trojan,
            MetricValue::Informational { value: 12.0 },
        );
        assert_eq!(m.verdict, Verdict::NotApplicable);
        assert!(m.value.passes());
        assert_eq!(m.value.value(), 12.0);
        let mut r = SecurityReport::new("x");
        r.metrics.push(m.clone());
        assert!(r.all_pass(), "informational metrics must not fail a report");
        let j = m.value.to_json();
        assert_eq!(j.get("direction"), Some(&Json::Str("informational".into())));
        assert_eq!(j.get("threshold"), Some(&Json::Null));
    }

    #[test]
    fn unavailable_metrics_degrade_without_failing() {
        let m = SecurityMetric::unavailable(
            "fault-detection coverage",
            ThreatVector::FaultInjection,
            "worker panicked: chaos: injected panic at compose.threat.panic#1",
        );
        assert_eq!(m.verdict, Verdict::Unavailable);
        assert!(!m.value.is_available());
        assert!(m.value.value().is_nan());
        let mut r = SecurityReport::new("x");
        r.metrics.push(m.clone());
        assert!(
            r.all_pass(),
            "a degraded metric must not fail the whole report"
        );
        assert_eq!(r.degraded().len(), 1);
        assert_eq!(r.degraded()[0].name, "fault-detection coverage");
        // an Unavailable metric is not a regression from a passing one
        let mut base = SecurityReport::new("base");
        base.metrics.push(SecurityMetric::new(
            "fault-detection coverage",
            ThreatVector::FaultInjection,
            MetricValue::HigherBetter {
                value: 1.0,
                threshold: 0.5,
            },
        ));
        assert!(r.regressions_from(&base).is_empty());
        let j = m.value.to_json();
        assert_eq!(j.get("direction"), Some(&Json::Str("unavailable".into())));
        assert_eq!(j.get("value"), Some(&Json::Null));
        assert!(matches!(j.get("reason"), Some(Json::Str(s)) if s.contains("chaos")));
        assert_eq!(m.verdict.to_json(), Json::Str("unavailable".into()));
    }

    #[test]
    fn regressions_are_detected() {
        let mut before = SecurityReport::new("masked");
        before.metrics.push(SecurityMetric::new(
            "probing leaks",
            ThreatVector::SideChannel,
            MetricValue::LowerBetter {
                value: 0.0,
                threshold: 0.0,
            },
        ));
        let mut after = SecurityReport::new("masked+parity");
        after.metrics.push(SecurityMetric::new(
            "probing leaks",
            ThreatVector::SideChannel,
            MetricValue::LowerBetter {
                value: 2.0,
                threshold: 0.0,
            },
        ));
        let regressions = after.regressions_from(&before);
        assert_eq!(regressions.len(), 1);
        assert_eq!(regressions[0].name, "probing leaks");
        assert!(!after.all_pass());
        assert!(before.all_pass());
    }

    #[test]
    fn for_threat_filters() {
        let mut r = SecurityReport::new("x");
        r.metrics.push(SecurityMetric::new(
            "a",
            ThreatVector::Trojan,
            MetricValue::HigherBetter {
                value: 1.0,
                threshold: 0.0,
            },
        ));
        r.metrics.push(SecurityMetric::new(
            "b",
            ThreatVector::Piracy,
            MetricValue::HigherBetter {
                value: 1.0,
                threshold: 0.0,
            },
        ));
        assert_eq!(r.for_threat(ThreatVector::Trojan).len(), 1);
        assert_eq!(r.for_threat(ThreatVector::SideChannel).len(), 0);
    }
}
