//! The EDA flow pipelines: classical (the paper's Fig. 1) and
//! security-centric.
//!
//! The classical flow optimizes PPA stage by stage and performs *no*
//! security work — its report records, per stage, what a security-aware
//! flow would additionally have checked. The secure flow runs the same
//! stages with tag-honoring synthesis plus the per-stage security duties
//! of Table II, and verifies at the end that the result is still
//! functionally equivalent to the input.

use crate::metrics::{MetricValue, SecurityMetric, SecurityReport};
use crate::threat::ThreatVector;
use seceda_dft::generate_tests;
use seceda_layout::{place, route, timing_report, PlacementConfig, RouteConfig};
use seceda_netlist::{Netlist, NetlistError, NetlistStats};
use seceda_sim::signal_probabilities;
use seceda_sim::{fault::stuck_at_universe, FaultSim};
use seceda_synth::{optimize, reassociate, SynthesisMode};
use seceda_verif::{check_equivalence, EquivResult};

/// Results of one flow stage.
#[derive(Debug, Clone, PartialEq)]
pub struct StageReport {
    /// Stage name (matches Fig. 1 / Table II rows).
    pub stage: String,
    /// Gate count after the stage.
    pub gates: usize,
    /// Area in gate equivalents after the stage.
    pub area_ge: f64,
    /// Critical-path delay after the stage (gate + wire, where known).
    pub delay: f64,
    /// Security checks a classical flow skips here (informational) or a
    /// secure flow ran (with results folded into the final report).
    pub security_notes: Vec<String>,
}

impl StageReport {
    /// Builds a stage record with gate count and area *freshly computed*
    /// from `nl` — every stage re-measures the design it actually ends
    /// on, instead of reusing numbers from an earlier stage.
    pub fn record(
        nl: &Netlist,
        stage: impl Into<String>,
        delay: f64,
        security_notes: Vec<String>,
    ) -> Self {
        let stats = NetlistStats::of(nl);
        StageReport {
            stage: stage.into(),
            gates: stats.num_gates,
            area_ge: stats.area_ge,
            delay,
            security_notes,
        }
    }

    /// Copies the stage metrics onto an open trace span.
    pub fn annotate_span(&self, span: &mut seceda_trace::Span) {
        span.attr("stage", self.stage.as_str());
        span.attr("gates", self.gates);
        span.attr("area_ge", self.area_ge);
        span.attr("delay", self.delay);
        span.attr("security_notes", self.security_notes.join("; "));
    }
}

/// Closes a stage: annotates its span with the report and appends the
/// report to the flow's stage list.
fn finish_stage(stages: &mut Vec<StageReport>, mut span: seceda_trace::Span, report: StageReport) {
    report.annotate_span(&mut span);
    drop(span);
    stages.push(report);
}

/// A full flow run.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowReport {
    /// Per-stage records, in execution order.
    pub stages: Vec<StageReport>,
    /// The final netlist.
    pub result: Netlist,
    /// Whether the final netlist was verified equivalent to the input.
    pub equivalence_checked: bool,
    /// The security evaluation (empty for the classical flow).
    pub security: SecurityReport,
}

/// Test-preparation metric that stays affordable on large designs: full
/// SAT-backed ATPG below `SAT_ATPG_GATE_LIMIT` gates, random-pattern
/// grading on a sampled fault universe above it.
const SAT_ATPG_GATE_LIMIT: usize = 400;

fn test_prep_note(nl: &Netlist) -> Result<String, NetlistError> {
    if nl.num_gates() <= SAT_ATPG_GATE_LIMIT {
        let atpg = generate_tests(nl, 32, 7)?;
        return Ok(format!(
            "ATPG: {:.1}% stuck-at coverage with {} patterns, {} untestable",
            atpg.coverage * 100.0,
            atpg.patterns.len(),
            atpg.untestable.len()
        ));
    }
    // sampled random-pattern grading for big designs
    let universe = stuck_at_universe(nl);
    let stride = (universe.len() / 256).max(1);
    let sampled: Vec<_> = universe.iter().step_by(stride).copied().collect();
    let sim = FaultSim::new(nl)?;
    use seceda_testkit::rng::{Rng, SeedableRng, StdRng};
    let mut rng = StdRng::seed_from_u64(7);
    let patterns: Vec<Vec<bool>> = (0..64)
        .map(|_| (0..nl.inputs().len()).map(|_| rng.gen()).collect())
        .collect();
    let (_, coverage) = sim.coverage(&patterns, &sampled);
    Ok(format!(
        "random-pattern grading: {:.1}% coverage over {} sampled faults (design too large for exhaustive SAT ATPG)",
        coverage * 100.0,
        sampled.len()
    ))
}

/// Runs the classical, security-unaware flow of Fig. 1: logic synthesis
/// (full optimization incl. re-association), physical synthesis,
/// timing/power analysis, and test preparation — PPA only.
///
/// With tracing on (`SECEDA_TRACE=1`) the run emits a `flow.classical`
/// root span with one `flow.stage` child per Fig. 1 stage, each carrying
/// gates/area/delay/security-note attributes.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn run_classical_flow(nl: &Netlist) -> Result<FlowReport, NetlistError> {
    let _flow_span = seceda_trace::span("flow.classical").with("design", nl.name());
    let mut stages = Vec::new();

    // logic synthesis: every optimization fires, tags be damned
    let sp = seceda_trace::span("flow.stage");
    let (reassoc, _) = reassociate(nl, SynthesisMode::Classical);
    let synthesized = optimize(&reassoc, SynthesisMode::Classical);
    finish_stage(
        &mut stages,
        sp,
        StageReport::record(
            &synthesized,
            "logic synthesis",
            seceda_netlist::DepthReport::of(&synthesized).critical_path,
            vec![
                "skipped: ordering barriers ignored (Fig. 2 hazard)".into(),
                "skipped: redundancy merged by CSE".into(),
            ],
        ),
    );

    // physical synthesis
    let sp = seceda_trace::span("flow.stage");
    let placement = place(&synthesized, &PlacementConfig::default());
    let routed = route(&synthesized, &placement, &RouteConfig::default());
    let timing = timing_report(&synthesized, &routed);
    finish_stage(
        &mut stages,
        sp,
        StageReport::record(
            &synthesized,
            "physical synthesis",
            timing.critical_path,
            vec![
                "skipped: no leakage assessment (TVLA)".into(),
                "skipped: no sensors/shields placed".into(),
            ],
        ),
    );

    // timing & power verification
    let sp = seceda_trace::span("flow.stage");
    finish_stage(
        &mut stages,
        sp,
        StageReport::record(
            &synthesized,
            "timing/power verification",
            timing.critical_path,
            vec!["skipped: no side-channel simulation".into()],
        ),
    );

    // test preparation
    let sp = seceda_trace::span("flow.stage");
    let atpg_note = test_prep_note(&synthesized)?;
    finish_stage(
        &mut stages,
        sp,
        StageReport::record(
            &synthesized,
            "test preparation",
            timing.critical_path,
            vec![
                atpg_note,
                "skipped: scan chain left unprotected (scan-attack hazard)".into(),
            ],
        ),
    );

    Ok(FlowReport {
        stages,
        result: synthesized,
        equivalence_checked: false,
        security: SecurityReport::new("classical flow (no security evaluation)"),
    })
}

/// Runs the security-centric flow: the same stages, but synthesis honors
/// security tags, every stage contributes a security metric, and the
/// output is formally checked equivalent to the input.
///
/// With tracing on (`SECEDA_TRACE=1`) the run emits a `flow.secure` root
/// span with one `flow.stage` child per Table II stage, each carrying
/// gates/area/delay/security-note attributes; nested synthesis, SAT,
/// simulation, and ATPG spans hang off their stage.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn run_secure_flow(nl: &Netlist) -> Result<FlowReport, NetlistError> {
    let _flow_span = seceda_trace::span("flow.secure").with("design", nl.name());
    let mut stages = Vec::new();
    let mut security = SecurityReport::new("secure flow");

    // logic synthesis, tag-honoring
    let sp = seceda_trace::span("flow.stage");
    let (reassoc, reassoc_report) = reassociate(nl, SynthesisMode::SecurityAware);
    let synthesized = optimize(&reassoc, SynthesisMode::SecurityAware);
    let barriers = synthesized
        .gates()
        .iter()
        .filter(|g| g.tags.no_reassoc)
        .count();
    security.metrics.push(SecurityMetric::new(
        "masking barriers preserved",
        ThreatVector::SideChannel,
        MetricValue::HigherBetter {
            value: barriers as f64,
            threshold: nl.gates().iter().filter(|g| g.tags.no_reassoc).count() as f64,
        },
    ));
    let redundancy = synthesized
        .gates()
        .iter()
        .filter(|g| g.tags.redundancy)
        .count();
    security.metrics.push(SecurityMetric::new(
        "redundancy gates preserved",
        ThreatVector::FaultInjection,
        MetricValue::HigherBetter {
            value: redundancy as f64,
            threshold: nl.gates().iter().filter(|g| g.tags.redundancy).count() as f64,
        },
    ));
    finish_stage(
        &mut stages,
        sp,
        StageReport::record(
            &synthesized,
            "logic synthesis (security-aware)",
            seceda_netlist::DepthReport::of(&synthesized).critical_path,
            vec![format!(
                "{} XOR trees skipped at barriers, {} rebuilt",
                reassoc_report.trees_skipped, reassoc_report.trees_rebuilt
            )],
        ),
    );

    // physical synthesis + Trojan surface assessment
    let sp = seceda_trace::span("flow.stage");
    let placement = place(&synthesized, &PlacementConfig::default());
    let routed = route(&synthesized, &placement, &RouteConfig::default());
    let timing = timing_report(&synthesized, &routed);
    let probs = signal_probabilities(&synthesized, 32, 11)?;
    let rare = synthesized
        .gates()
        .iter()
        .filter(|g| {
            let p = probs[g.output.index()];
            p.min(1.0 - p) <= 0.05
        })
        .count();
    // reported for awareness; unmonitored designs have no universal
    // rare-net threshold, so the metric never pass/fail-gates the flow
    security.metrics.push(SecurityMetric::new(
        "rare-net Trojan surface",
        ThreatVector::Trojan,
        MetricValue::Informational { value: rare as f64 },
    ));
    finish_stage(
        &mut stages,
        sp,
        StageReport::record(
            &synthesized,
            "physical synthesis (security-aware)",
            timing.critical_path,
            vec![format!(
                "wirelength {} (sensors/shields placeable via seceda-layout)",
                routed.total_length
            )],
        ),
    );

    // functional validation: formal equivalence against the input
    let sp = seceda_trace::span("flow.stage");
    let equivalent = check_equivalence(nl, &synthesized)? == EquivResult::Equivalent;
    finish_stage(
        &mut stages,
        sp,
        StageReport::record(
            &synthesized,
            "functional validation",
            timing.critical_path,
            vec![format!("SAT equivalence: {equivalent}")],
        ),
    );

    // test preparation
    let sp = seceda_trace::span("flow.stage");
    let atpg_note = test_prep_note(&synthesized)?;
    finish_stage(
        &mut stages,
        sp,
        StageReport::record(
            &synthesized,
            "test preparation",
            timing.critical_path,
            vec![atpg_note],
        ),
    );

    Ok(FlowReport {
        stages,
        result: synthesized,
        equivalence_checked: equivalent,
        security,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use seceda_netlist::{c17, CellKind, GateTags};
    use seceda_sca::mask_netlist;

    #[test]
    fn classical_flow_runs_and_reports_stages() {
        let report = run_classical_flow(&c17()).expect("flow");
        assert_eq!(report.stages.len(), 4);
        assert!(!report.equivalence_checked);
        assert!(report.stages.iter().all(|s| !s.security_notes.is_empty()));
        // classical flow preserves function on an untagged design
        assert_eq!(report.result.truth_table(), c17().truth_table());
    }

    #[test]
    fn secure_flow_preserves_function_and_verifies_it() {
        let report = run_secure_flow(&c17()).expect("flow");
        assert!(report.equivalence_checked, "equivalence must be proven");
        assert_eq!(report.result.truth_table(), c17().truth_table());
    }

    #[test]
    fn classical_flow_destroys_masking_secure_flow_keeps_it() {
        let mut nl = Netlist::new("and");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let y = nl.add_gate(CellKind::And, &[a, b]);
        nl.mark_output(y, "y");
        let masked = mask_netlist(&nl);

        let classical = run_classical_flow(&masked.netlist).expect("flow");
        let secure = run_secure_flow(&masked.netlist).expect("flow");
        let barriers = |n: &Netlist| n.gates().iter().filter(|g| g.tags.no_reassoc).count();
        assert!(
            barriers(&classical.result) < barriers(&masked.netlist),
            "classical flow optimizes through the gadget"
        );
        assert_eq!(
            barriers(&secure.result),
            barriers(&masked.netlist),
            "secure flow must keep every barrier gate"
        );
        assert!(secure.security.all_pass());
    }

    #[test]
    fn secure_flow_keeps_redundancy() {
        use seceda_fia::duplicate_with_compare;
        let p = duplicate_with_compare(&seceda_netlist::majority());
        let secure = run_secure_flow(&p.netlist).expect("flow");
        let red = |n: &Netlist| n.gates().iter().filter(|g| g.tags.redundancy).count();
        assert_eq!(red(&secure.result), red(&p.netlist));
        let classical = run_classical_flow(&p.netlist).expect("flow");
        assert!(red(&classical.result) < red(&p.netlist));
    }

    #[test]
    fn tags_flow_through_gate_tags_helper() {
        // guard: GateTags is re-exported where the flow expects it
        let t = GateTags::default();
        assert!(!t.is_protected());
    }
}
