//! # seceda-core
//!
//! The paper's primary contribution made executable: a *security-centric
//! EDA flow* with holistic re-evaluation of every threat after every
//! countermeasure — "secure composition" (Knechtel et al., DATE 2020).
//!
//! The thesis of the paper is that countermeasures interact: adding
//! error-detecting logic can void a masking scheme \[61\], classical
//! optimization can strip redundancy and watermarks, and a locking pass
//! can change timing enough to open fault windows. The only defensible
//! flow is one that, after *every* insertion, re-runs the evaluations
//! for *all* threat vectors and reports regressions. That flow is this
//! crate:
//!
//! * [`threat`] — threat vectors, attack timing, and the EDA roles of
//!   the paper's Table I;
//! * [`metrics`] — the security-metric framework, including the
//!   step-function behaviour Sec. IV predicts (and [`dse`] measures);
//! * [`compose`] — the composition engine: apply countermeasures to a
//!   design-under-test, re-evaluate all threats, detect cross-effects;
//! * [`cache`] — the sharded per-threat evaluation cache that makes the
//!   re-evaluate-everything loop affordable: results are keyed on a
//!   structural digest of exactly what each evaluator reads, so a hit
//!   is bit-identical to a recompute;
//! * [`closure`] — the multi-session closure driver: many
//!   countermeasure schedules evaluated concurrently over one shared
//!   cache, with rollback of regressing steps;
//! * [`flow`] — the classical (Fig. 1) and security-centric flow
//!   pipelines over the `seceda` substrate crates;
//! * [`dse`] — security-aware design-space exploration with
//!   step-function detection;
//! * [`report`] — the regenerators for the paper's Table I and Table II
//!   as *measured* artifacts.

pub mod cache;
pub mod closure;
pub mod compose;
pub mod dse;
pub mod flow;
pub mod metrics;
pub mod report;
pub mod threat;

pub use cache::{CacheKey, CacheStats, EvalCache};
pub use closure::{
    run_closure, run_closure_full, run_closure_with, ClosureConfig, ClosureReport, ClosureSession,
    SessionOutcome,
};
pub use compose::{
    CompositionEngine, Countermeasure, DesignUnderTest, EvaluationOutcome, SecurityEvaluation,
};
pub use dse::{explore, step_score, DsePoint, DseSweep};
pub use flow::{run_classical_flow, run_secure_flow, FlowReport, StageReport};
pub use metrics::{
    MetricProvenance, MetricSource, MetricValue, SecurityMetric, SecurityReport, Verdict,
};
pub use report::{table1, table2, Table};
pub use threat::{AttackTime, EdaRole, ThreatVector};
