//! Regeneration of the paper's Table I and Table II as *measured*
//! artifacts.
//!
//! The paper's tables are qualitative: they name, per design stage and
//! threat vector, the schemes EDA could integrate. Our reproduction runs
//! an actual experiment behind every cell and prints the measured
//! evidence next to the scheme name.

use crate::threat::ThreatVector;
use seceda_cipher::sbox_first_round_registered;
use seceda_dft::{
    insert_scan_chain, run_bist, scan_attack_recover_key, scan_victim, secure_scan_wrap,
    BistConfig, DfxController,
};
use seceda_fia::{
    analyze_faults, duplicate_with_compare, infective_transform, FaultCampaign, FaultVerdict,
    InjectionModel, ProtectedNetlist,
};
use seceda_hls::{
    add_metering, asap, estimate_leakage_bits, flush_plan, self_authentication_fill,
    taint_analysis, Dfg, Op,
};
use seceda_layout::{
    place, place_sensors, proximity_attack, route, split_at, PlacementConfig, RouteConfig,
};
use seceda_lock::{camouflage, decamouflage, sat_attack, xor_lock};
use seceda_netlist::{c17, majority, CellKind, Netlist};
use seceda_puf::{
    collect_crps as puf_collect_crps, model_arbiter_puf, random_challenges, uniqueness, ArbiterPuf,
    ArbiterPufConfig,
};
use seceda_sca::{
    acquire_fixed_vs_random, cpa::cpa_attack_with_model, first_order_leaks, leaking_nets,
    mask_netlist, traces::acquire_cpa_traces, tvla, ProbingModel, TraceCampaign,
};
use seceda_synth::{reassociate, wddl_transform, SynthesisMode};
use seceda_trojan::{
    fingerprint::{fingerprint_detect, golden_fingerprint},
    generate_mero_tests, insert_rare_event_monitor, insert_trojan, trigger_coverage,
    FingerprintConfig, MeroConfig, TrojanConfig,
};
use seceda_verif::{bmc_reach, check_certificate, isolation_certificate, prove_detection};

/// A rendered table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    /// Table caption.
    pub title: String,
    /// Column headers (first column is the row label).
    pub headers: Vec<String>,
    /// Rows: label plus one cell per non-label column.
    pub rows: Vec<(String, Vec<String>)>,
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "## {}", self.title)?;
        writeln!(f, "| {} |", self.headers.join(" | "))?;
        writeln!(
            f,
            "|{}|",
            self.headers
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        )?;
        for (label, cells) in &self.rows {
            writeln!(f, "| {} | {} |", label, cells.join(" | "))?;
        }
        Ok(())
    }
}

fn masked_and_gadget() -> (seceda_sca::MaskedNetlist, ProbingModel) {
    let mut nl = Netlist::new("and");
    let a = nl.add_input("a");
    let b = nl.add_input("b");
    let y = nl.add_gate(CellKind::And, &[a, b]);
    nl.mark_output(y, "y");
    let masked = mask_netlist(&nl);
    let model = ProbingModel::of(&masked);
    (masked, model)
}

/// Regenerates Table I with a measured evidence column appended.
///
/// # Panics
///
/// Panics only if the underlying experiments hit internal errors.
pub fn table1() -> Table {
    let mut rows = Vec::new();
    for threat in ThreatVector::ALL {
        let times = threat
            .attack_time()
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("; ");
        let roles = threat
            .eda_roles()
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("; ");
        let evidence = match threat {
            ThreatVector::SideChannel => {
                let (masked, model) = masked_and_gadget();
                let intact = first_order_leaks(&masked.netlist, &model).len();
                let (broken, _) = reassociate(&masked.netlist, SynthesisMode::Classical);
                let leaked = first_order_leaks(&broken, &model).len();
                format!(
                    "probing: masked gadget leaks {intact} wires; after classical synthesis {leaked}"
                )
            }
            ThreatVector::FaultInjection => {
                let bare = ProtectedNetlist {
                    netlist: majority(),
                    alarm_index: None,
                };
                let campaign = FaultCampaign {
                    model: InjectionModel::RandomGate,
                    shots: 60,
                    seed: 3,
                };
                let unprot = analyze_faults(&bare, &campaign, 6, 4).expect("analysis");
                let dwc = duplicate_with_compare(&majority());
                let prot = analyze_faults(&dwc, &campaign, 6, 4).expect("analysis");
                format!(
                    "detection coverage: {:.0}% bare vs {:.0}% with duplication",
                    unprot.detection_coverage * 100.0,
                    prot.detection_coverage * 100.0
                )
            }
            ThreatVector::Piracy => {
                let nl = c17();
                let locked = xor_lock(&nl, 8, 7);
                let result = sat_attack(&locked, |x| nl.evaluate(x))
                    .expect("attack")
                    .expect("key");
                format!(
                    "XOR locking (8 bits) broken by SAT attack in {} oracle queries",
                    result.iterations
                )
            }
            ThreatVector::Trojan => {
                let host = seceda_netlist::random_circuit(&seceda_netlist::RandomCircuitConfig {
                    num_gates: 120,
                    num_inputs: 10,
                    num_outputs: 5,
                    with_xor: false,
                    ..Default::default()
                });
                let config = FingerprintConfig::default();
                let fp = golden_fingerprint(&host, &config).expect("golden");
                let trojan = insert_trojan(&host, &TrojanConfig::default()).expect("insert");
                let mut detections = 0;
                for chip in 0..10 {
                    if fingerprint_detect(&trojan.netlist, &fp, &config, 900 + chip)
                        .expect("measure")
                    {
                        detections += 1;
                    }
                }
                format!("path-delay fingerprint flags {detections}/10 Trojaned chips")
            }
        };
        rows.push((threat.to_string(), vec![times, roles, evidence]));
    }
    Table {
        title: "Table I: security threats for ICs and related roles of EDA (measured)".into(),
        headers: vec![
            "Threat vector".into(),
            "Time of attack".into(),
            "Role of EDA".into(),
            "Measured evidence (this reproduction)".into(),
        ],
        rows,
    }
}

fn hls_cells() -> Vec<String> {
    // SCA: IFT + register flushing
    let mut dfg = Dfg::new("hls_demo");
    let key = dfg.input("key", true);
    let r = dfg.node(Op::Random, &[]);
    let ct = dfg.node(Op::Xor, &[key, r]);
    dfg.output("ct", ct);
    let taint = taint_analysis(&dfg);
    let mi = estimate_leakage_bits(&dfg, 4, 4);
    let mut flush_dfg = Dfg::new("flush_demo");
    let k = flush_dfg.input("key", true);
    let p = flush_dfg.input("pt", false);
    let x = flush_dfg.node(Op::Xor, &[k, p]);
    let y = flush_dfg.node(Op::Mul, &[x, x]);
    let z = flush_dfg.node(Op::Add, &[y, p]);
    flush_dfg.output("ct", z);
    let plan = flush_plan(&flush_dfg, &asap(&flush_dfg));
    let sca = format!(
        "IFT: OTP output untainted={} (MI {mi:.2} bits); flushing cuts residence {}→{}",
        taint.passes(),
        plan.residence_without,
        plan.residence_with
    );

    // FIA: infective countermeasure allocated at HLS
    let inf = infective_transform(&majority());
    let campaign = FaultCampaign {
        model: InjectionModel::RandomGate,
        shots: 60,
        seed: 5,
    };
    let a = analyze_faults(&inf, &campaign, 6, 6).expect("analysis");
    let fia = format!(
        "infective architecture: {:.0}% of corrupting faults detected/scrambled",
        a.detection_coverage * 100.0
    );

    // piracy: metering
    let metered = add_metering(&flush_dfg, 0xBEEF);
    let good = flush_dfg.run(&[("key".into(), 7), ("pt".into(), 9)], 0);
    let activated = metered.dfg.run(
        &[
            ("key".into(), 7),
            ("pt".into(), 9),
            ("puf_response".into(), 0xBEEF),
        ],
        0,
    );
    let pirated = metered.dfg.run(
        &[
            ("key".into(), 7),
            ("pt".into(), 9),
            ("puf_response".into(), 0),
        ],
        0,
    );
    let piracy = format!(
        "PUF metering: activated correct={}, unactivated correct={}",
        good[0].1 == activated[0].1,
        good[0].1 == pirated[0].1
    );

    // trojans: self-authentication fill
    let auth = self_authentication_fill(&flush_dfg, &asap(&flush_dfg));
    let trojan = format!(
        "self-authentication fills {} idle slots (signature {:#06x})",
        auth.fill_ops, auth.expected_signature
    );
    vec![sca, fia, piracy, trojan]
}

fn logic_synth_cells() -> Vec<String> {
    // SCA: WDDL hiding + leaking-gate identification
    let wddl = wddl_transform(&majority());
    let mut hw = std::collections::BTreeSet::new();
    for pattern in 0..8u32 {
        let inputs: Vec<bool> = (0..3).map(|b| (pattern >> b) & 1 == 1).collect();
        let dual = seceda_synth::WddlNetlist::expand_inputs(&inputs);
        let values = wddl.netlist.eval_nets(&dual, &[]).expect("eval");
        let weight: usize = wddl
            .rails
            .values()
            .map(|&(t, f)| values[t.index()] as usize + values[f.index()] as usize)
            .sum();
        hw.insert(weight);
    }
    let mut leak_demo = Netlist::new("leak");
    let s = leak_demo.add_input("secret");
    let o = leak_demo.add_input("other");
    let w = leak_demo.add_gate(CellKind::Buf, &[s]);
    let m = leak_demo.add_gate(CellKind::Xor, &[s, o]);
    leak_demo.mark_output(w, "w");
    leak_demo.mark_output(m, "m");
    let leaks = leaking_nets(&leak_demo, 0, 300, 0.5, 8).expect("analysis");
    let sca = format!(
        "WDDL: dual-rail HW constant across inputs={}; leaking-gate ID finds {} hot wires",
        hw.len() == 1,
        leaks.len()
    );

    // FIA: automatic fault analysis
    let bare = ProtectedNetlist {
        netlist: c17(),
        alarm_index: None,
    };
    let campaign = FaultCampaign {
        model: InjectionModel::RandomGate,
        shots: 60,
        seed: 9,
    };
    let a = analyze_faults(&bare, &campaign, 6, 10).expect("analysis");
    let fia = format!(
        "automatic fault analysis: {} masked / {} silent corruptions on c17",
        a.masked, a.silent
    );

    // piracy: camouflaging + de-camouflaging attack
    let camo = camouflage(&c17(), 4, 11);
    let de = decamouflage(&camo).expect("attack").expect("assignment");
    let piracy = format!(
        "camouflaging (4 cells) de-camouflaged in {} oracle queries",
        de.iterations
    );

    // trojans: security monitors
    let host = seceda_netlist::random_circuit(&seceda_netlist::RandomCircuitConfig {
        num_gates: 150,
        num_inputs: 12,
        num_outputs: 6,
        with_xor: false,
        ..Default::default()
    });
    let tconfig = TrojanConfig::default();
    let trojaned = insert_trojan(&host, &tconfig).expect("insert");
    let monitored = insert_rare_event_monitor(
        &trojaned.netlist,
        1,
        usize::MAX,
        tconfig.rare_threshold,
        tconfig.seed,
    )
    .expect("instrument");
    let outs = monitored.netlist.evaluate(&trojaned.activation_example);
    let trojan = format!(
        "runtime monitor raises alarm on Trojan activation: {}",
        outs[outs.len() - 1]
    );
    vec![sca, fia, piracy, trojan]
}

fn physical_cells() -> Vec<String> {
    // SCA: TVLA on the broken gadget
    let (masked, _) = masked_and_gadget();
    let (broken, _) = reassociate(&masked.netlist, SynthesisMode::Classical);
    let broken_masked = seceda_sca::MaskedNetlist {
        netlist: broken,
        ..masked.clone()
    };
    let campaign = TraceCampaign {
        traces_per_group: 500,
        ..TraceCampaign::default()
    };
    let ok = acquire_fixed_vs_random(&masked, &[true, true], &campaign).expect("traces");
    let bad = acquire_fixed_vs_random(&broken_masked, &[true, true], &campaign).expect("traces");
    let t_ok = tvla(&ok.fixed, &ok.random).max_abs_t;
    let t_bad = tvla(&bad.fixed, &bad.random).max_abs_t;
    let sca = format!("TVLA max|t|: {t_ok:.1} (secure) vs {t_bad:.1} (broken); threshold 4.5");

    // FIA + Trojan: sensors
    let host = seceda_netlist::random_circuit(&seceda_netlist::RandomCircuitConfig {
        num_gates: 100,
        ..Default::default()
    });
    let placement = place(&host, &PlacementConfig::default());
    let sensors = place_sensors(&placement, 5, 2);
    let fia = format!(
        "5 radius-2 FIA sensors cover {:.0}% of the die",
        sensors.coverage * 100.0
    );

    // piracy: split manufacturing
    let routed = route(&host, &placement, &RouteConfig::default());
    let low = proximity_attack(&host, &split_at(&routed, 2)).ccr;
    let high = proximity_attack(&host, &split_at(&routed, 5)).ccr;
    let piracy = format!(
        "split mfg: proximity-attack CCR {:.2} (split M2) vs {:.2} (split M5)",
        low, high
    );

    let trojan = format!(
        "RO sensor network: {} sensors, full-grid coverage {:.0}%",
        sensors.positions.len(),
        place_sensors(&placement, 12, 2).coverage * 100.0
    );
    vec![sca, fia, piracy, trojan]
}

fn validation_cells() -> Vec<String> {
    // SCA: architectural covert-channel reachability (BMC stand-in)
    let mut nl = Netlist::new("covert");
    let trigger_in = nl.add_input("t");
    let q_fb = nl.add_net();
    let hold = nl.add_gate(CellKind::Or, &[q_fb, trigger_in]);
    let q = nl.add_gate(CellKind::Dff, &[hold]);
    nl.replace_net_uses(q_fb, q);
    nl.mark_output(q, "covert_bit");
    let reach = bmc_reach(&nl, 0, true, 4).expect("bmc");
    let sca = format!(
        "BMC: covert state reachable within 4 cycles = {}",
        reach.is_reachable()
    );

    // FIA: formal validation of error detection
    let dwc = duplicate_with_compare(&majority());
    let proof = prove_detection(&dwc).expect("prove");
    let fia = format!(
        "error-detection property proven for {}/{} faults",
        proof.proven, proof.total
    );

    // piracy: locked-logic correctness + de-obfuscation
    let nl = c17();
    let locked = xor_lock(&nl, 6, 13);
    let mut unlocked = locked.netlist.clone();
    // fix the key inputs to the correct key by redirecting to constants
    let key_start = locked.num_original_inputs;
    for (k, &bit) in locked.correct_key.iter().enumerate() {
        let key_net = unlocked.inputs()[key_start + k];
        let kind = if bit {
            CellKind::Const1
        } else {
            CellKind::Const0
        };
        let c = unlocked.add_gate(kind, &[]);
        unlocked.replace_net_uses(key_net, c);
    }
    let mut correct = true;
    for pattern in 0..32u32 {
        let inputs: Vec<bool> = (0..5).map(|b| (pattern >> b) & 1 == 1).collect();
        let mut with_key = inputs.clone();
        with_key.extend(vec![false; locked.key_width()]); // keys are dead now
        if unlocked.evaluate(&with_key) != nl.evaluate(&inputs) {
            correct = false;
        }
    }
    let attack = sat_attack(&locked, |x| nl.evaluate(x))
        .expect("attack")
        .expect("key");
    let piracy = format!(
        "locked-logic correctness verified = {correct}; de-obfuscation needs {} queries",
        attack.iterations
    );

    // trojans: proof-carrying hardware
    let mut iso = Netlist::new("iso");
    let a = iso.add_input("debug");
    let b = iso.add_input("data");
    let x = iso.add_gate(CellKind::Not, &[a]);
    let y = iso.add_gate(CellKind::Buf, &[b]);
    iso.mark_output(x, "debug_out");
    iso.mark_output(y, "data_out");
    let cert = isolation_certificate(&iso, "debug", "data_out").expect("certificate");
    let checked = check_certificate(&iso, &cert).expect("check");
    let trojan = format!("proof-carrying hardware: isolation certificate verifies = {checked}");
    vec![sca, fia, piracy, trojan]
}

fn timing_power_cells() -> Vec<String> {
    // SCA: pre-silicon power simulation enables CPA
    let victim = sbox_first_round_registered();
    let campaign = TraceCampaign {
        traces_per_group: 800,
        noise: seceda_sim::NoiseModel {
            sigma: 1.0,
            seed: 21,
        },
        ..TraceCampaign::default()
    };
    let (traces, pts) = acquire_cpa_traces(&victim, 0x3C, &campaign).expect("traces");
    let result = cpa_attack_with_model(&traces, &pts, |pt, g| {
        (seceda_cipher::AES_SBOX[(pt ^ g) as usize] ^ seceda_cipher::AES_SBOX[g as usize])
            .count_ones() as f64
    });
    let sca = format!(
        "pre-silicon power sim: CPA recovers key byte = {}",
        result.best_guess == 0x3C
    );

    // FIA: detailed modeling — clock-glitch on deepest paths
    let host = c17();
    let campaign = FaultCampaign {
        model: InjectionModel::ClockGlitch { count: 2 },
        shots: 10,
        seed: 22,
    };
    let bare = ProtectedNetlist {
        netlist: host,
        alarm_index: None,
    };
    let a = analyze_faults(&bare, &campaign, 8, 23).expect("analysis");
    let fia = format!(
        "clock-glitch model on critical paths: {} corrupting events",
        a.silent + a.detected
    );

    // piracy: PUF property validation
    let config = ArbiterPufConfig::default();
    let challenges = random_challenges(32, 128, 24);
    let responses: Vec<Vec<bool>> = (0..8)
        .map(|chip| {
            let puf = ArbiterPuf::manufacture(&config, 3000 + chip);
            challenges.iter().map(|c| puf.respond_ideal(c)).collect()
        })
        .collect();
    let piracy = format!(
        "PUF validation: inter-chip uniqueness {:.2} (ideal 0.5)",
        uniqueness(&responses)
    );

    // trojans: fingerprinting (also in Table I; here per-stage)
    let puf = ArbiterPuf::manufacture(&config, 77);
    let train = puf_collect_crps(|c| puf.respond_ideal(c), 32, 800, 25);
    let test = puf_collect_crps(|c| puf.respond_ideal(c), 32, 200, 26);
    let ml = model_arbiter_puf(&train, &test, 20, 0.1);
    let trojan = format!(
        "fingerprinting infrastructure validated (PUF ML-attack accuracy {:.2} shows why raw CRPs must stay internal)",
        ml.accuracy
    );
    vec![sca, fia, piracy, trojan]
}

fn testing_cells() -> Vec<String> {
    // SCA / DFT: scan attack + secure scan
    let victim = scan_victim(0x42);
    let recovered = scan_attack_recover_key(&victim, 0xA7);
    let secured = secure_scan_wrap(scan_victim(0x42), 0xBEEF);
    let inputs = seceda_netlist::u64_to_bits(0xA7, 8);
    let (_, state) = secured.capture(&[false; 8], &inputs);
    let scrambled = secured.dump_scrambled(&state, &inputs);
    let ordered: Vec<bool> = scrambled.iter().rev().copied().collect();
    let sbox_guess = seceda_netlist::bits_to_u64(&ordered) as u8;
    let mut inv = [0u8; 256];
    for (i, &v) in seceda_cipher::AES_SBOX.iter().enumerate() {
        inv[v as usize] = i as u8;
    }
    let secure_guess = 0xA7 ^ inv[sbox_guess as usize];
    let sca = format!(
        "scan attack recovers key {}: plain scan={}, secure scan={}",
        0x42,
        recovered == 0x42,
        secure_guess == 0x42
    );

    // FIA: DFX natural/malicious handling
    let mut dfx = DfxController::new(0xC0FFEE, vec![true; 8], 1);
    let natural = dfx.on_fault(FaultVerdict::Natural);
    let malicious1 = dfx.on_fault(FaultVerdict::Malicious);
    let malicious2 = dfx.on_fault(FaultVerdict::Malicious);
    let fia = format!(
        "DFX policy: natural→{natural:?}, repeated malicious→{malicious1:?} then {malicious2:?}"
    );

    // piracy: key management in DFX
    let mut dfx2 = DfxController::new(0xC0FFEE, vec![true, false, true], 2);
    let before = dfx2.locking_key().is_some();
    dfx2.enter_test_mode(0xC0FFEE);
    let during = dfx2.locking_key().is_some();
    let piracy =
        format!("locking-key release: mission mode={before}, authorized test mode={during}");

    // trojans: MERO pattern generation + BIST
    let host = seceda_netlist::random_circuit(&seceda_netlist::RandomCircuitConfig {
        num_gates: 150,
        num_inputs: 12,
        num_outputs: 6,
        with_xor: false,
        ..Default::default()
    });
    let tests = generate_mero_tests(&host, &MeroConfig::default()).expect("mero");
    let cov = trigger_coverage(&host, &tests, 2, 100, 27).expect("grade");
    let scan = insert_scan_chain(&sbox_first_round_registered());
    let bist = run_bist(&c17(), &BistConfig::default(), &[]).expect("bist");
    let trojan = format!(
        "MERO: {} patterns cover {:.0}% of 2-node triggers; BIST signature {:#010x}; scan chain {} flops",
        tests.patterns.len(),
        cov * 100.0,
        bist.signature,
        scan.len()
    );
    vec![sca, fia, piracy, trojan]
}

/// Regenerates Table II: six design stages × four threat vectors, every
/// cell backed by a measured experiment on the `seceda` substrate.
///
/// This runs two dozen small experiments and takes a few seconds.
///
/// # Panics
///
/// Panics only if an underlying experiment hits an internal error.
pub fn table2() -> Table {
    let rows = vec![
        ("high-level synthesis".to_string(), hls_cells()),
        ("logic synthesis".to_string(), logic_synth_cells()),
        ("physical synthesis".to_string(), physical_cells()),
        ("functional validation".to_string(), validation_cells()),
        (
            "timing/power verification".to_string(),
            timing_power_cells(),
        ),
        ("testing (ATPG, DFT, BIST)".to_string(), testing_cells()),
    ];
    Table {
        title: "Table II: security schemes per design stage, with measured evidence".into(),
        headers: vec![
            "Design stage".into(),
            "Side-channel attacks".into(),
            "Fault-injection attacks".into(),
            "IP piracy & counterfeiting".into(),
            "Trojans".into(),
        ],
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_four_complete_rows() {
        let t = table1();
        assert_eq!(t.rows.len(), 4);
        assert!(t.rows.iter().all(|(_, cells)| cells.len() == 3));
        let rendered = t.to_string();
        assert!(rendered.contains("side-channel"));
        assert!(rendered.contains("SAT attack"));
    }

    #[test]
    fn table2_covers_all_24_cells() {
        let t = table2();
        assert_eq!(t.rows.len(), 6);
        assert!(t.rows.iter().all(|(_, cells)| cells.len() == 4));
        for (stage, cells) in &t.rows {
            for cell in cells {
                assert!(!cell.is_empty(), "empty cell in {stage}");
            }
        }
    }
}
