//! The shared per-threat evaluation cache of the incremental
//! composition engine.
//!
//! A [`CacheKey`] is a threat vector plus a 128-bit *dependency digest*
//! covering everything the threat's evaluator reads: the relevant
//! structural cone digests of the design under test (see
//! `seceda_netlist::StructuralHash`) and the evaluation parameters. The
//! evaluators are deterministic pure functions of exactly those inputs,
//! so a key hit returns bit-identically what a fresh evaluation would
//! compute — the cache-correctness argument of DESIGN.md §3.
//!
//! The map is sharded behind plain mutexes so many concurrent closure
//! sessions (`seceda_core::closure`) contend on 1/16th of the keyspace
//! each, and a per-key *in-flight latch* makes concurrent sessions that
//! reach the same uncached key compute it once: the first session
//! computes while the rest wait on a condvar and then read the
//! published metric.
//!
//! Two things are deliberately **not** cached:
//!
//! * degraded metrics ([`crate::MetricValue::Unavailable`] — panics,
//!   budget exhaustion, chaos injections) — a degraded evaluation must
//!   not poison the cache, so the in-flight entry is removed and the
//!   next request recomputes;
//! * errors — a failed computation likewise unlatches the key so
//!   waiters retry rather than inheriting the failure.
//!
//! There is no eviction: entries are small (one [`SecurityMetric`]) and
//! a closure run's working set is bounded by the number of distinct
//! design states it visits. Long-lived servers would layer an LRU on
//! top; the flight-recorder counters (`compose.cache_hits` /
//! `compose.cache_misses`) expose the data to decide when.

use crate::metrics::SecurityMetric;
use crate::threat::ThreatVector;
use seceda_netlist::hash::mix64;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Number of independent shards; a power of two so shard selection is a
/// mask.
const SHARDS: usize = 16;

/// What one cached evaluation is keyed on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// The threat vector whose evaluator produced the metric.
    pub threat: ThreatVector,
    /// Dependency digest: structural cone digests + evaluation
    /// parameters, as built by the engine's per-threat key derivation.
    pub dep: [u64; 2],
}

/// The in-flight latch for one key being computed.
struct Flight {
    done: Mutex<bool>,
    cv: Condvar,
}

impl Flight {
    fn new() -> Self {
        Flight {
            done: Mutex::new(false),
            cv: Condvar::new(),
        }
    }

    fn finish(&self) {
        *ignore_poison(self.done.lock()) = true;
        self.cv.notify_all();
    }

    fn wait(&self) {
        let mut done = ignore_poison(self.done.lock());
        while !*done {
            done = ignore_poison(self.cv.wait(done));
        }
    }
}

enum Slot {
    Ready(SecurityMetric),
    InFlight(Arc<Flight>),
}

/// Point-in-time cache statistics.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CacheStats {
    /// Evaluations served from the cache.
    pub hits: u64,
    /// Evaluations computed (and, when available, published).
    pub misses: u64,
    /// Distinct metrics currently stored.
    pub entries: usize,
}

impl CacheStats {
    /// Fraction of lookups served from the cache (0 when idle).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A sharded, latch-deduplicated map from [`CacheKey`] to
/// [`SecurityMetric`], shared across engines via `Arc`.
pub struct EvalCache {
    shards: Vec<Mutex<HashMap<CacheKey, Slot>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// A mutex payload is plain data here; a panicking holder cannot leave
/// it in a torn state, so poisoning is ignored (the workspace's chaos
/// harness injects panics deliberately).
fn ignore_poison<T>(r: Result<T, std::sync::PoisonError<T>>) -> T {
    r.unwrap_or_else(|e| e.into_inner())
}

impl EvalCache {
    /// An empty cache.
    pub fn new() -> Self {
        EvalCache {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &CacheKey) -> MutexGuard<'_, HashMap<CacheKey, Slot>> {
        let i = (mix64(key.dep[0] ^ key.dep[1]) as usize) & (SHARDS - 1);
        ignore_poison(self.shards[i].lock())
    }

    /// Returns the cached metric for `key`, or computes, publishes, and
    /// returns it. The boolean is `true` for a cache hit (including
    /// waiting out another session's in-flight computation of the same
    /// key).
    ///
    /// `compute` runs outside every lock. If it returns a degraded
    /// (unavailable) metric, an error, or panics, nothing is published
    /// and the key is unlatched so later requests recompute.
    ///
    /// # Errors
    ///
    /// Propagates `compute`'s error verbatim.
    pub fn get_or_compute<E>(
        &self,
        key: CacheKey,
        compute: impl FnOnce() -> Result<SecurityMetric, E>,
    ) -> Result<(SecurityMetric, bool), E> {
        loop {
            let flight = {
                let mut shard = self.shard(&key);
                match shard.get(&key) {
                    Some(Slot::Ready(m)) => {
                        self.hits.fetch_add(1, Ordering::Relaxed);
                        return Ok((m.clone(), true));
                    }
                    Some(Slot::InFlight(f)) => Arc::clone(f),
                    None => {
                        let f = Arc::new(Flight::new());
                        shard.insert(key, Slot::InFlight(Arc::clone(&f)));
                        drop(shard);
                        self.misses.fetch_add(1, Ordering::Relaxed);
                        // unlatch on every exit path (incl. panic unwind)
                        let guard = UnlatchGuard {
                            cache: self,
                            key,
                            flight: f,
                            publish: None,
                        };
                        let metric = compute()?;
                        let mut guard = guard;
                        if metric.value.is_available() {
                            guard.publish = Some(metric.clone());
                        }
                        drop(guard);
                        return Ok((metric, false));
                    }
                }
            };
            // another session is computing this key: wait it out, then
            // re-check (the slot is Ready on success, vacated otherwise)
            flight.wait();
        }
    }

    /// Point-in-time statistics.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.len(),
        }
    }

    /// Number of stored metrics.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                ignore_poison(s.lock())
                    .values()
                    .filter(|v| matches!(v, Slot::Ready(_)))
                    .count()
            })
            .sum()
    }

    /// `true` when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Default for EvalCache {
    fn default() -> Self {
        EvalCache::new()
    }
}

impl std::fmt::Debug for EvalCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        f.debug_struct("EvalCache")
            .field("entries", &s.entries)
            .field("hits", &s.hits)
            .field("misses", &s.misses)
            .finish()
    }
}

/// Replaces this computation's in-flight latch with its result (or
/// removes it) and wakes waiters — on success, error, and panic alike.
struct UnlatchGuard<'a> {
    cache: &'a EvalCache,
    key: CacheKey,
    flight: Arc<Flight>,
    publish: Option<SecurityMetric>,
}

impl Drop for UnlatchGuard<'_> {
    fn drop(&mut self) {
        let mut shard = self.cache.shard(&self.key);
        // replace only our own latch: a concurrent retry may have
        // re-latched the key after a previous unlatch
        let ours = matches!(
            shard.get(&self.key),
            Some(Slot::InFlight(f)) if Arc::ptr_eq(f, &self.flight)
        );
        if ours {
            match self.publish.take() {
                Some(m) => {
                    shard.insert(self.key, Slot::Ready(m));
                }
                None => {
                    shard.remove(&self.key);
                }
            }
        }
        drop(shard);
        self.flight.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricValue;
    use std::sync::atomic::AtomicUsize;

    fn key(x: u64) -> CacheKey {
        CacheKey {
            threat: ThreatVector::Piracy,
            dep: [x, !x],
        }
    }

    fn metric(v: f64) -> SecurityMetric {
        SecurityMetric::new(
            "m",
            ThreatVector::Piracy,
            MetricValue::HigherBetter {
                value: v,
                threshold: 0.0,
            },
        )
    }

    #[test]
    fn second_lookup_hits() {
        let cache = EvalCache::new();
        let (m1, hit1) = cache
            .get_or_compute(key(1), || Ok::<_, ()>(metric(7.0)))
            .expect("compute");
        assert!(!hit1);
        let (m2, hit2) = cache
            .get_or_compute(key(1), || -> Result<SecurityMetric, ()> {
                panic!("must not recompute")
            })
            .expect("hit");
        assert!(hit2);
        assert_eq!(m1, m2);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn degraded_metrics_never_poison_the_cache() {
        let cache = EvalCache::new();
        let degraded = SecurityMetric::unavailable("m", ThreatVector::Piracy, "chaos");
        let (m, hit) = cache
            .get_or_compute(key(2), || Ok::<_, ()>(degraded.clone()))
            .expect("compute");
        assert!(!hit);
        assert_eq!(m, degraded);
        assert!(cache.is_empty(), "unavailable results must not be stored");
        // the next request recomputes and can publish a healthy value
        let (m, hit) = cache
            .get_or_compute(key(2), || Ok::<_, ()>(metric(1.0)))
            .expect("compute");
        assert!(!hit);
        assert!(m.value.is_available());
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn errors_and_panics_unlatch_the_key() {
        let cache = EvalCache::new();
        let err = cache.get_or_compute(key(3), || Err::<SecurityMetric, &str>("boom"));
        assert_eq!(err.unwrap_err(), "boom");
        assert!(cache.is_empty());
        let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ =
                cache.get_or_compute(key(3), || -> Result<SecurityMetric, ()> { panic!("chaos") });
        }));
        assert!(panicked.is_err());
        // the key is free again: a fresh compute succeeds
        let (_, hit) = cache
            .get_or_compute(key(3), || Ok::<_, ()>(metric(2.0)))
            .expect("compute");
        assert!(!hit);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn concurrent_sessions_compute_each_key_once() {
        let cache = Arc::new(EvalCache::new());
        let computed = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let cache = Arc::clone(&cache);
            let computed = Arc::clone(&computed);
            handles.push(std::thread::spawn(move || {
                let (m, _) = cache
                    .get_or_compute(key(4), || {
                        computed.fetch_add(1, Ordering::SeqCst);
                        // widen the in-flight window so waiters pile up
                        std::thread::sleep(std::time::Duration::from_millis(20));
                        Ok::<_, ()>(metric(9.0))
                    })
                    .expect("compute");
                assert_eq!(m.value.value(), 9.0);
            }));
        }
        for h in handles {
            h.join().expect("thread");
        }
        assert_eq!(
            computed.load(Ordering::SeqCst),
            1,
            "the in-flight latch must deduplicate concurrent computes"
        );
        let s = cache.stats();
        assert_eq!(s.hits + s.misses, 8);
        assert_eq!(s.misses, 1);
    }

    #[test]
    fn distinct_keys_do_not_alias() {
        let cache = EvalCache::new();
        for i in 0..64u64 {
            cache
                .get_or_compute(key(i), || Ok::<_, ()>(metric(i as f64)))
                .expect("compute");
        }
        assert_eq!(cache.len(), 64);
        for i in 0..64u64 {
            let (m, hit) = cache
                .get_or_compute(key(i), || -> Result<SecurityMetric, ()> {
                    panic!("must hit")
                })
                .expect("hit");
            assert!(hit);
            assert_eq!(m.value.value(), i as f64);
        }
    }
}
