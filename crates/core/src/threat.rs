//! Threat vectors and the roles of EDA (the paper's Table I).

use seceda_testkit::json::{Json, ToJson};
use std::fmt;

/// The four threat vectors of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ThreatVector {
    /// Side-channel attacks (power, timing).
    SideChannel,
    /// Fault-injection attacks (laser, EM, glitching).
    FaultInjection,
    /// Piracy of design IP and counterfeiting of ICs.
    Piracy,
    /// Hardware Trojans.
    Trojan,
}

impl ThreatVector {
    /// All vectors in the paper's Table I order.
    pub const ALL: [ThreatVector; 4] = [
        ThreatVector::SideChannel,
        ThreatVector::FaultInjection,
        ThreatVector::Piracy,
        ThreatVector::Trojan,
    ];

    /// When the attack takes place (Table I, column 2).
    pub fn attack_time(self) -> &'static [AttackTime] {
        match self {
            ThreatVector::SideChannel | ThreatVector::FaultInjection => &[AttackTime::Runtime],
            ThreatVector::Piracy => &[AttackTime::Manufacturing, AttackTime::InTheField],
            ThreatVector::Trojan => &[AttackTime::Design, AttackTime::Manufacturing],
        }
    }

    /// The roles EDA can play (Table I, column 3).
    pub fn eda_roles(self) -> &'static [EdaRole] {
        match self {
            ThreatVector::SideChannel | ThreatVector::FaultInjection => {
                &[EdaRole::Evaluation, EdaRole::MitigationAtDesignTime]
            }
            ThreatVector::Piracy => &[EdaRole::MitigationAtDesignTime],
            ThreatVector::Trojan => &[
                EdaRole::MitigationAtDesignTime,
                EdaRole::VerificationAtDesignTime,
                EdaRole::PreparingForTestingInspection,
            ],
        }
    }
}

impl fmt::Display for ThreatVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ThreatVector::SideChannel => "side-channel attacks",
            ThreatVector::FaultInjection => "fault-injection attacks",
            ThreatVector::Piracy => "IP piracy / counterfeiting",
            ThreatVector::Trojan => "hardware Trojans",
        };
        f.write_str(s)
    }
}

/// When an attack happens in the IC life cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttackTime {
    /// During design (e.g. malicious 3rd-party IP).
    Design,
    /// During manufacturing (untrusted foundry / test facility).
    Manufacturing,
    /// After deployment, by malicious end users.
    InTheField,
    /// While the device operates.
    Runtime,
}

impl fmt::Display for AttackTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AttackTime::Design => "design",
            AttackTime::Manufacturing => "manufacturing",
            AttackTime::InTheField => "in the field",
            AttackTime::Runtime => "runtime",
        };
        f.write_str(s)
    }
}

/// What EDA tooling can contribute against a threat.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdaRole {
    /// Quantitative evaluation of the vulnerability at design time.
    Evaluation,
    /// Automated insertion of countermeasures at design time.
    MitigationAtDesignTime,
    /// Formal/functional verification of security properties.
    VerificationAtDesignTime,
    /// Preparing structures for post-silicon testing and inspection.
    PreparingForTestingInspection,
}

impl fmt::Display for EdaRole {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            EdaRole::Evaluation => "evaluation",
            EdaRole::MitigationAtDesignTime => "mitigation at design time",
            EdaRole::VerificationAtDesignTime => "verification at design time",
            EdaRole::PreparingForTestingInspection => "preparing for testing/inspection",
        };
        f.write_str(s)
    }
}

/// Serializes as the human-readable `Display` string, which is part of
/// the report format and therefore stable.
impl ToJson for ThreatVector {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl ToJson for AttackTime {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl ToJson for EdaRole {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_rows_match_the_paper() {
        assert_eq!(
            ThreatVector::SideChannel.attack_time(),
            &[AttackTime::Runtime]
        );
        assert_eq!(
            ThreatVector::Piracy.attack_time(),
            &[AttackTime::Manufacturing, AttackTime::InTheField]
        );
        assert!(ThreatVector::Trojan
            .eda_roles()
            .contains(&EdaRole::PreparingForTestingInspection));
        assert!(ThreatVector::SideChannel
            .eda_roles()
            .contains(&EdaRole::Evaluation));
    }

    #[test]
    fn display_is_informative() {
        for t in ThreatVector::ALL {
            assert!(!t.to_string().is_empty());
            for at in t.attack_time() {
                assert!(!at.to_string().is_empty());
            }
            for r in t.eda_roles() {
                assert!(!r.to_string().is_empty());
            }
        }
    }
}
