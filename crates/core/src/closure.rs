//! Multi-session security closure: the secure-composition loop at
//! campaign scale.
//!
//! The paper's flow (Sec. IV) re-evaluates *every* threat after *every*
//! countermeasure. Run naively over a portfolio of candidate schedules
//! — the way closure is actually driven, many variants of the same
//! design racing to an all-pass report — that is quadratic amounts of
//! repeated work: most steps touch a small cone of the design, and most
//! schedules share long prefixes.
//!
//! This driver makes the loop affordable without changing a single
//! reported bit. Each session is a [`CompositionEngine`] whose
//! evaluations go through one shared [`EvalCache`]; the cache key binds
//! the structural digest of exactly what each evaluator reads
//! (maintained incrementally across splice edits), so sessions that
//! share state share work, and a step that regresses a metric can be
//! rolled back and re-verified for the price of a lookup.
//!
//! Sessions run concurrently over `seceda_testkit::par`; the in-flight
//! latch inside [`EvalCache`] guarantees each distinct evaluation is
//! computed exactly once even when many sessions reach the same state
//! simultaneously.

use crate::cache::{CacheStats, EvalCache};
use crate::compose::{CompositionEngine, Countermeasure, DesignUnderTest, SecurityEvaluation};
use crate::metrics::SecurityReport;
use seceda_netlist::NetlistError;
use seceda_testkit::par::par_map;
use std::sync::Arc;

/// One closure session: a design plus the countermeasure schedule to
/// drive it through.
#[derive(Debug, Clone)]
pub struct ClosureSession {
    /// Session label, carried onto the outcome.
    pub label: String,
    /// The starting design state.
    pub design: DesignUnderTest,
    /// Countermeasures to apply, in order.
    pub schedule: Vec<Countermeasure>,
}

impl ClosureSession {
    /// Convenience constructor.
    pub fn new(
        label: impl Into<String>,
        design: DesignUnderTest,
        schedule: Vec<Countermeasure>,
    ) -> Self {
        ClosureSession {
            label: label.into(),
            design,
            schedule,
        }
    }
}

/// Driver knobs shared by every session of a closure run.
#[derive(Debug, Clone, Copy)]
pub struct ClosureConfig {
    /// Evaluation thresholds and effort.
    pub eval: SecurityEvaluation,
    /// Roll back any step whose re-evaluation regressed a passing
    /// metric — the paper's negative cross-effect — and re-verify the
    /// restored state before continuing the schedule.
    pub rollback_regressions: bool,
}

impl Default for ClosureConfig {
    fn default() -> Self {
        ClosureConfig {
            eval: SecurityEvaluation::default(),
            rollback_regressions: true,
        }
    }
}

/// What one session produced.
#[derive(Debug, Clone)]
pub struct SessionOutcome {
    /// The session's label.
    pub label: String,
    /// Countermeasures that survived (applied and not rolled back).
    pub applied: Vec<Countermeasure>,
    /// Steps that regressed a metric and were rolled back, with the
    /// names of the regressed metrics.
    pub rolled_back: Vec<(Countermeasure, Vec<String>)>,
    /// The final verification report.
    pub final_report: SecurityReport,
    /// Total evaluations the session ran (baseline + per-step +
    /// rollback re-verifies + final verify).
    pub evaluations: usize,
}

impl SessionOutcome {
    /// Whether the session reached closure: every metric of the final
    /// report passes (degraded metrics do not count as failures, same
    /// as [`SecurityReport::all_pass`]).
    pub fn closed(&self) -> bool {
        self.final_report.all_pass()
    }
}

/// The aggregate of a closure run.
#[derive(Debug, Clone)]
pub struct ClosureReport {
    /// Per-session outcomes, in input order.
    pub sessions: Vec<SessionOutcome>,
    /// Cache statistics at the end of the run; all-zero for uncached
    /// (full-recompute) runs.
    pub cache: CacheStats,
}

impl ClosureReport {
    /// Number of sessions whose final report passes everywhere.
    pub fn closed_sessions(&self) -> usize {
        self.sessions.iter().filter(|s| s.closed()).count()
    }

    /// Total evaluations across all sessions.
    pub fn total_evaluations(&self) -> usize {
        self.sessions.iter().map(|s| s.evaluations).sum()
    }
}

/// Runs every session concurrently over one shared, freshly created
/// evaluation cache.
///
/// # Errors
///
/// Propagates the first simulator error any session hits.
pub fn run_closure(
    sessions: Vec<ClosureSession>,
    config: &ClosureConfig,
) -> Result<ClosureReport, NetlistError> {
    run_closure_with(sessions, config, Some(Arc::new(EvalCache::new())))
}

/// Runs every session with full recomputation (no cache) — the
/// reference the differential suite and the `compose` bench compare
/// cached runs against.
///
/// # Errors
///
/// Propagates the first simulator error any session hits.
pub fn run_closure_full(
    sessions: Vec<ClosureSession>,
    config: &ClosureConfig,
) -> Result<ClosureReport, NetlistError> {
    run_closure_with(sessions, config, None)
}

/// Runs every session, sharing `cache` if one is given. Use this form
/// to carry a cache across closure runs (multi-session closure over
/// the same design family).
///
/// # Errors
///
/// Propagates the first simulator error any session hits.
pub fn run_closure_with(
    sessions: Vec<ClosureSession>,
    config: &ClosureConfig,
    cache: Option<Arc<EvalCache>>,
) -> Result<ClosureReport, NetlistError> {
    let mut run_span = seceda_trace::span("closure.run")
        .with("sessions", sessions.len())
        .with("cached", cache.is_some());
    seceda_trace::counter("closure.sessions", sessions.len() as u64);
    let results = par_map(&sessions, |_, session| {
        run_session(session, config, cache.clone())
    });
    let mut outcomes = Vec::with_capacity(results.len());
    for res in results {
        outcomes.push(res?);
    }
    let stats = cache.as_deref().map(EvalCache::stats).unwrap_or_default();
    run_span.attr("closed", outcomes.iter().filter(|s| s.closed()).count());
    run_span.attr("cache_hits", stats.hits);
    Ok(ClosureReport {
        sessions: outcomes,
        cache: stats,
    })
}

fn run_session(
    session: &ClosureSession,
    config: &ClosureConfig,
    cache: Option<Arc<EvalCache>>,
) -> Result<SessionOutcome, NetlistError> {
    let mut sp =
        seceda_trace::span("closure.session").with("gates", session.design.netlist.num_gates());
    if seceda_trace::enabled() {
        sp.attr("label", session.label.clone());
    }
    let mut engine = match cache {
        Some(c) => CompositionEngine::with_cache(session.design.clone(), config.eval, c),
        None => CompositionEngine::new(session.design.clone(), config.eval),
    };
    engine.evaluate("baseline")?;
    let mut rolled_back = Vec::new();
    for &cm in &session.schedule {
        let snapshot = engine.design().clone();
        let outcome = engine.apply(cm)?;
        if config.rollback_regressions && !outcome.regressions.is_empty() {
            engine.revert_last(snapshot);
            // re-verify the restored state; with a shared cache this is
            // served from the pre-apply keys
            engine.evaluate("after rollback")?;
            rolled_back.push((cm, outcome.regressions));
        }
    }
    let final_report = engine.evaluate("closure verify")?.clone();
    sp.attr("evaluations", engine.history().len());
    sp.attr("rolled_back", rolled_back.len());
    Ok(SessionOutcome {
        label: session.label.clone(),
        applied: engine.applied().to_vec(),
        rolled_back,
        final_report,
        evaluations: engine.history().len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use seceda_netlist::{CellKind, Netlist};

    fn and_gadget() -> DesignUnderTest {
        let mut nl = Netlist::new("and");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let y = nl.add_gate(CellKind::And, &[a, b]);
        nl.mark_output(y, "y");
        DesignUnderTest::new(nl)
    }

    #[test]
    fn identical_sessions_share_the_cache() {
        let schedule = vec![Countermeasure::XorLock(8), Countermeasure::TrojanMonitor];
        let sessions: Vec<ClosureSession> = (0..3)
            .map(|i| ClosureSession::new(format!("s{i}"), and_gadget(), schedule.clone()))
            .collect();
        let config = ClosureConfig::default();
        let report = run_closure(sessions, &config).expect("closure");
        assert_eq!(report.sessions.len(), 3);
        // three identical sessions: everything after the first
        // computation of each state is a hit
        assert!(
            report.cache.hits > report.cache.misses,
            "stats: {:?}",
            report.cache
        );
        let first = &report.sessions[0].final_report;
        for s in &report.sessions[1..] {
            assert_eq!(s.final_report.metrics, first.metrics);
        }
    }

    #[test]
    fn cached_and_full_closure_agree() {
        let schedule = vec![
            Countermeasure::XorLock(8),
            Countermeasure::ParityCheck,
            Countermeasure::TrojanMonitor,
        ];
        let mk = || vec![ClosureSession::new("s", and_gadget(), schedule.clone())];
        let config = ClosureConfig::default();
        let cached = run_closure(mk(), &config).expect("cached");
        let full = run_closure_full(mk(), &config).expect("full");
        assert_eq!(full.cache.hits, 0, "uncached runs report zero stats");
        for (c, f) in cached.sessions.iter().zip(&full.sessions) {
            assert_eq!(c.final_report.metrics, f.final_report.metrics);
            assert_eq!(c.applied, f.applied);
            assert_eq!(c.rolled_back, f.rolled_back);
        }
    }

    #[test]
    fn regressing_step_is_rolled_back() {
        // the paper's [61] cross-effect: parity prediction on a masked
        // design recombines the shares — the driver must refuse it
        let schedule = vec![
            Countermeasure::Masking,
            Countermeasure::ParityCheck,
            Countermeasure::DuplicationCompare,
        ];
        let sessions = vec![ClosureSession::new("masked", and_gadget(), schedule)];
        let config = ClosureConfig::default();
        let report = run_closure(sessions, &config).expect("closure");
        let s = &report.sessions[0];
        assert_eq!(
            s.applied,
            vec![Countermeasure::Masking, Countermeasure::DuplicationCompare],
            "the regressing parity step must not survive"
        );
        assert_eq!(s.rolled_back.len(), 1);
        assert_eq!(s.rolled_back[0].0, Countermeasure::ParityCheck);
        assert!(s.rolled_back[0]
            .1
            .contains(&"first-order probing leaks".to_string()));
        // masking + share-wise duplication: the final state passes both
        // the side-channel and fault metrics (piracy still fails — no
        // locking in this schedule)
        for name in ["first-order probing leaks", "fault-detection coverage"] {
            let m = s
                .final_report
                .metrics
                .iter()
                .find(|m| m.name == name)
                .expect("metric present");
            assert_eq!(
                m.verdict,
                crate::metrics::Verdict::Pass,
                "{name}: {:?}",
                s.final_report
            );
        }
    }

    #[test]
    fn rollback_disabled_keeps_the_regressing_step() {
        let schedule = vec![Countermeasure::Masking, Countermeasure::ParityCheck];
        let sessions = vec![ClosureSession::new("naive", and_gadget(), schedule.clone())];
        let config = ClosureConfig {
            rollback_regressions: false,
            ..ClosureConfig::default()
        };
        let report = run_closure(sessions, &config).expect("closure");
        let s = &report.sessions[0];
        assert_eq!(s.applied, schedule);
        assert!(s.rolled_back.is_empty());
        assert!(!s.closed(), "the naive flow ships the broken masking");
    }
}
