//! Integration test for the flow telemetry: the secure flow must emit
//! exactly one `flow.stage` span per Table II stage, nested under the
//! `flow.secure` root, with the stage metrics attached as attributes.

use seceda_core::run_secure_flow;
use seceda_netlist::c17;
use seceda_testkit::json::Json;
use seceda_trace::{session, to_json_lines, AttrValue, Summary};

const SECURE_STAGES: [&str; 4] = [
    "logic synthesis (security-aware)",
    "physical synthesis (security-aware)",
    "functional validation",
    "test preparation",
];

#[test]
fn secure_flow_emits_one_span_per_stage() {
    let (report, events) = session(|| run_secure_flow(&c17()).expect("flow"));
    let summary = Summary::of(&events);

    let roots: Vec<_> = summary.spans_named("flow.secure").collect();
    assert_eq!(roots.len(), 1, "exactly one flow root span");
    let root = roots[0];
    assert_eq!(root.parent, None, "flow root has no parent");
    assert_eq!(
        root.attr("design"),
        Some(&AttrValue::Str("c17".into())),
        "root carries the design name"
    );

    let stage_spans: Vec<_> = summary.spans_named("flow.stage").collect();
    assert_eq!(
        stage_spans.len(),
        SECURE_STAGES.len(),
        "one span per Table II stage"
    );
    for (span, (expected_name, stage)) in stage_spans
        .iter()
        .zip(SECURE_STAGES.iter().zip(&report.stages))
    {
        assert_eq!(span.parent, Some(root.id), "stages nest under the flow");
        assert_eq!(
            span.attr("stage"),
            Some(&AttrValue::Str((*expected_name).to_string())),
            "stage order matches Table II"
        );
        assert_eq!(
            span.attr("gates"),
            Some(&AttrValue::Int(stage.gates as i64)),
            "gate count attribute matches the stage report"
        );
        assert_eq!(
            span.attr("area_ge"),
            Some(&AttrValue::Float(stage.area_ge)),
            "area attribute matches the stage report"
        );
        assert_eq!(
            span.attr("delay"),
            Some(&AttrValue::Float(stage.delay)),
            "delay attribute matches the stage report"
        );
        match span.attr("security_notes") {
            Some(AttrValue::Str(notes)) => assert!(!notes.is_empty()),
            other => panic!("security_notes must be a string attr, got {other:?}"),
        }
        assert!(span.end_ns >= span.start_ns);
    }
}

#[test]
fn secure_flow_counters_cover_sat_sim_and_atpg() {
    let (_, events) = session(|| run_secure_flow(&c17()).expect("flow"));
    let summary = Summary::of(&events);
    for name in [
        "sat.decisions",
        "sat.propagations",
        "sim.patterns_simulated",
        "dft.patterns_generated",
        "synth.xor_trees_rebuilt",
    ] {
        assert!(
            summary.counters.contains_key(name),
            "counter {name} must be emitted by the secure flow; got {:?}",
            summary.counters.keys().collect::<Vec<_>>()
        );
    }
    // c17 is fully testable, so ATPG produced at least one pattern
    assert!(summary.counters.get("dft.patterns_generated").copied() > Some(0));
    // SAT ran for equivalence + ATPG cleanup
    assert!(summary.spans_named("sat.solve").next().is_some());
}

#[test]
fn flow_events_export_as_valid_json_lines() {
    let (_, events) = session(|| run_secure_flow(&c17()).expect("flow"));
    let lines = to_json_lines(&events);
    let mut span_lines = 0;
    for line in lines.lines() {
        let json = Json::parse(line).expect("each line is standalone JSON");
        let ty = json.get("type").expect("type field");
        if ty == &Json::Str("span".into()) {
            span_lines += 1;
            assert!(json.get("name").is_some());
            assert!(json.get("start_ns").is_some());
            assert!(json.get("end_ns").is_some());
        }
    }
    assert!(span_lines >= 5, "root + four stages at minimum");
}
