//! Differential suite for the incremental closure machinery: a cached
//! composition engine must produce **bit-identical** reports to a
//! full-recompute engine at every step of every schedule — across
//! designs, random countermeasure sequences, worker counts, and chaos
//! injection. This is the contract that makes the evaluation cache
//! admissible at all.

use seceda_core::{
    run_closure, run_closure_full, ClosureConfig, ClosureSession, CompositionEngine,
    Countermeasure, DesignUnderTest, EvalCache, MetricSource, SecurityEvaluation, Verdict,
};
use seceda_netlist::{
    c17, parse_design, random_circuit, ripple_adder, write_bench, DesignFormat, Netlist,
    RandomCircuitConfig,
};
use seceda_testkit::chaos;
use seceda_testkit::par::with_workers;
use seceda_testkit::rng::{Rng, SeedableRng, StdRng};
use std::sync::Arc;

/// Countermeasure pool for the random schedules. Masking is excluded
/// here because exact probing only scales to gadget-sized interfaces
/// (`first_order_leaks` bounds the variable count); the masking paths
/// are exercised by the dedicated gadget tests below and in
/// `closure.rs`.
fn random_countermeasure(rng: &mut StdRng) -> Countermeasure {
    match rng.gen_range(0..5u32) {
        0 => Countermeasure::XorLock(4),
        1 => Countermeasure::XorLock(8),
        2 => Countermeasure::ParityCheck,
        3 => Countermeasure::DuplicationCompare,
        _ => Countermeasure::TrojanMonitor,
    }
}

/// Drives a cached engine and a full-recompute engine through the same
/// random schedule, asserting identical reports at every step.
fn differential(design: Netlist, seed: u64, steps: usize) {
    let eval = SecurityEvaluation {
        fia_shots: 20,
        ..SecurityEvaluation::default()
    };
    let cache = Arc::new(EvalCache::new());
    let mut cached =
        CompositionEngine::with_cache(DesignUnderTest::new(design.clone()), eval, cache.clone());
    let mut full = CompositionEngine::new(DesignUnderTest::new(design), eval);

    let a = cached.evaluate("baseline").expect("cached eval").clone();
    let b = full.evaluate("baseline").expect("full eval").clone();
    assert_eq!(a, b, "seed {seed:#x}: baseline diverged");

    let mut rng = StdRng::seed_from_u64(seed);
    for step in 0..steps {
        let cm = random_countermeasure(&mut rng);
        let oc = cached.apply(cm).expect("cached apply");
        let of = full.apply(cm).expect("full apply");
        // SecurityReport equality covers label + every metric bit;
        // provenance is deliberately outside the equality
        assert_eq!(
            oc.report, of.report,
            "seed {seed:#x} step {step} ({cm:?}): reports diverged"
        );
        assert_eq!(oc.regressions, of.regressions, "seed {seed:#x} step {step}");
        // only the cached engine maintains a hash, so only it can
        // report the dirty cone
        assert!(oc.dirty_gates.is_some(), "seed {seed:#x} step {step}");
        assert!(of.dirty_gates.is_none(), "seed {seed:#x} step {step}");
    }
    assert_eq!(cached.history().len(), full.history().len());
}

#[test]
fn cached_matches_full_on_bench_designs() {
    differential(c17(), 0xC17, 5);
    differential(ripple_adder(8), 0xADD, 5);
}

#[test]
fn cached_matches_full_on_random_designs() {
    for seed in [7u64, 8] {
        let nl = random_circuit(&RandomCircuitConfig {
            num_inputs: 10,
            num_gates: 150,
            num_outputs: 4,
            with_xor: true,
            seed,
        });
        differential(nl, seed, 6);
    }
}

#[test]
fn cached_matches_full_on_parsed_designs() {
    // a design that went through the .bench round-trip (internal nets
    // renamed) must cache exactly like the built original
    let nl = ripple_adder(8);
    let reparsed = parse_design(&write_bench(&nl), DesignFormat::Bench).expect("parse");
    differential(reparsed, 0xBE9C, 5);
}

#[test]
fn cached_matches_full_across_worker_counts() {
    for workers in [1usize, 4] {
        with_workers(workers, || differential(c17(), 0x440 + workers as u64, 4));
    }
}

#[test]
fn cached_matches_full_under_chaos() {
    // chaos decisions are pure functions of (seed, point, salt) and the
    // engine checks them *before* the cache lookup, so a cached closure
    // must degrade on exactly the same steps as a full recompute — the
    // verify.sh chaos seeds are the ones that matter
    for seed in [0xDEAD_BEEFu64, 0xCAFE] {
        chaos::with_seed(seed, || differential(c17(), seed, 4));
    }
}

#[test]
fn degraded_metrics_are_recomputed_not_served() {
    let cache = Arc::new(EvalCache::new());
    let eval = SecurityEvaluation::default();
    let mut engine =
        CompositionEngine::with_cache(DesignUnderTest::new(c17()), eval, cache.clone());
    // salt 1 pins the fault-injection evaluator: it panics, degrades,
    // and must NOT be published to the cache
    chaos::with_forced("compose.threat.panic", Some(1), || {
        let report = engine.evaluate("chaotic").expect("eval").clone();
        assert_eq!(report.degraded().len(), 1);
        assert_eq!(report.degraded()[0].name, "fault-detection coverage");
    });
    // with chaos gone the same key recomputes to a real value; the
    // three clean metrics come straight from the cache
    chaos::without_chaos(|| {
        let report = engine.evaluate("recovered").expect("eval").clone();
        assert!(report.degraded().is_empty(), "stale degradation served");
        assert_eq!(
            report.cached_count(),
            3,
            "provenance: {:?}",
            report.provenance
        );
        let fia = report
            .provenance
            .iter()
            .find(|p| p.name == "fault-detection coverage")
            .expect("provenance present");
        assert_eq!(fia.source, MetricSource::Computed);
    });
}

#[test]
fn second_identical_session_is_all_hits() {
    let cache = Arc::new(EvalCache::new());
    let eval = SecurityEvaluation::default();
    let schedule = [Countermeasure::XorLock(8), Countermeasure::TrojanMonitor];
    let run = || {
        let mut engine =
            CompositionEngine::with_cache(DesignUnderTest::new(c17()), eval, cache.clone());
        engine.evaluate("baseline").expect("eval");
        for cm in schedule {
            engine.apply(cm).expect("apply");
        }
        engine.history().last().expect("report").clone()
    };
    let first = run();
    let before = cache.stats();
    let second = run();
    let after = cache.stats();
    assert_eq!(first, second);
    assert_eq!(
        after.misses, before.misses,
        "a replayed session must not compute anything"
    );
    assert_eq!(second.cached_count(), 4, "{:?}", second.provenance);
}

#[test]
fn closure_driver_matches_full_recompute_on_a_portfolio() {
    // the end-to-end shape the bench measures, shrunk: several sessions
    // with shared prefixes over one design family
    let designs = [c17(), ripple_adder(4)];
    let schedules: [&[Countermeasure]; 3] = [
        &[Countermeasure::XorLock(8), Countermeasure::TrojanMonitor],
        &[
            Countermeasure::XorLock(8),
            Countermeasure::ParityCheck,
            Countermeasure::TrojanMonitor,
        ],
        &[
            Countermeasure::DuplicationCompare,
            Countermeasure::XorLock(4),
        ],
    ];
    let mk = || {
        let mut sessions = Vec::new();
        for (i, d) in designs.iter().enumerate() {
            for (j, s) in schedules.iter().enumerate() {
                sessions.push(ClosureSession::new(
                    format!("d{i}s{j}"),
                    DesignUnderTest::new(d.clone()),
                    s.to_vec(),
                ));
            }
        }
        sessions
    };
    let config = ClosureConfig {
        eval: SecurityEvaluation {
            fia_shots: 20,
            ..SecurityEvaluation::default()
        },
        ..ClosureConfig::default()
    };
    for workers in [1usize, 4] {
        with_workers(workers, || {
            let cached = run_closure(mk(), &config).expect("cached closure");
            let full = run_closure_full(mk(), &config).expect("full closure");
            for (c, f) in cached.sessions.iter().zip(&full.sessions) {
                assert_eq!(c.label, f.label);
                assert_eq!(c.final_report.metrics, f.final_report.metrics);
                assert_eq!(c.applied, f.applied);
                assert_eq!(c.rolled_back, f.rolled_back);
            }
            assert!(
                cached.cache.hits > 0,
                "shared prefixes must hit: {:?}",
                cached.cache
            );
            assert_eq!(full.cache.hits, 0);
        });
    }
}

#[test]
fn masked_gadget_caches_without_losing_the_cross_effect() {
    // the paper's masking/parity conflict must survive caching: the
    // regression is re-detected from cached metrics bit-identically
    let mut nl = Netlist::new("and");
    let a = nl.add_input("a");
    let b = nl.add_input("b");
    let y = nl.add_gate(seceda_netlist::CellKind::And, &[a, b]);
    nl.mark_output(y, "y");
    let eval = SecurityEvaluation::default();
    let cache = Arc::new(EvalCache::new());
    let mut cached =
        CompositionEngine::with_cache(DesignUnderTest::new(nl.clone()), eval, cache.clone());
    let mut full = CompositionEngine::new(DesignUnderTest::new(nl), eval);
    for engine in [&mut cached, &mut full] {
        engine.evaluate("baseline").expect("eval");
        engine.apply(Countermeasure::Masking).expect("mask");
    }
    let oc = cached.apply(Countermeasure::ParityCheck).expect("parity");
    let of = full.apply(Countermeasure::ParityCheck).expect("parity");
    assert_eq!(oc.report, of.report);
    assert!(oc
        .regressions
        .contains(&"first-order probing leaks".to_string()));
    let sca = oc
        .report
        .metrics
        .iter()
        .find(|m| m.name == "first-order probing leaks")
        .expect("metric");
    assert_eq!(sca.verdict, Verdict::Fail);
}
