//! Workspace smoke test: the paper's Fig. 2 hazard as an executable
//! check, end to end through the two flow pipelines.
//!
//! An ISW-masked AND gadget is first-order probing secure as designed.
//! Feeding it through the classical flow (which ignores the `no_reassoc`
//! barriers) re-associates the gadget's XOR trees and materializes a
//! wire whose distribution depends on the unmasked secret — the exact
//! failure mode motivating the paper. The security-aware flow preserves
//! the gadget and the probing guarantee.

use seceda_core::{run_classical_flow, run_secure_flow};
use seceda_netlist::{CellKind, Netlist};
use seceda_sca::{first_order_leaks, mask_netlist, ProbingModel};

/// The single-AND gadget of Fig. 2: `y = a & b`, ISW-masked to 3 shares.
fn masked_and() -> (seceda_sca::MaskedNetlist, ProbingModel) {
    let mut nl = Netlist::new("and");
    let a = nl.add_input("a");
    let b = nl.add_input("b");
    let y = nl.add_gate(CellKind::And, &[a, b]);
    nl.mark_output(y, "y");
    let masked = mask_netlist(&nl);
    let model = ProbingModel::of(&masked);
    (masked, model)
}

#[test]
fn gadget_is_probing_secure_as_designed() {
    let (masked, model) = masked_and();
    assert!(
        first_order_leaks(&masked.netlist, &model).is_empty(),
        "the ISW gadget must have no first-order leaks before synthesis"
    );
}

#[test]
fn classical_flow_introduces_first_order_leak() {
    let (masked, model) = masked_and();
    let report = run_classical_flow(&masked.netlist).expect("classical flow");
    let leaks = first_order_leaks(&report.result, &model);
    assert!(
        !leaks.is_empty(),
        "unconstrained re-association must expose a secret-dependent wire (Fig. 2)"
    );
    // the classical flow performs no security evaluation at all
    assert!(!report.equivalence_checked);
    assert!(report.security.metrics.is_empty());
}

#[test]
fn secure_flow_preserves_probing_security() {
    let (masked, model) = masked_and();
    let report = run_secure_flow(&masked.netlist).expect("secure flow");
    assert!(
        first_order_leaks(&report.result, &model).is_empty(),
        "the security-aware flow must keep the gadget first-order secure"
    );
    // and it proves it did not change the function
    assert!(report.equivalence_checked);
    assert!(
        report.security.all_pass(),
        "secure-flow report must pass: {:?}",
        report.security
    );
}

#[test]
fn both_flows_preserve_function() {
    // even the classical flow is functionally correct — the hazard is
    // *only* visible to an attacker probing internal wires
    let (masked, _) = masked_and();
    let classical = run_classical_flow(&masked.netlist).expect("classical flow");
    let secure = run_secure_flow(&masked.netlist).expect("secure flow");
    for pattern in 0u32..(1 << masked.netlist.inputs().len().min(12)) {
        let inputs: Vec<bool> = (0..masked.netlist.inputs().len())
            .map(|i| (pattern >> i) & 1 == 1)
            .collect();
        let want = masked.netlist.evaluate(&inputs);
        assert_eq!(classical.result.evaluate(&inputs), want);
        assert_eq!(secure.result.evaluate(&inputs), want);
    }
}
